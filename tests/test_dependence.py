"""Dependence analysis tests."""

import pytest

from repro.errors import DependenceError
from repro.lang.dependence import Dependence, analyze_dependences, build_graph
from repro.lang.parser import parse_loop
from repro.workloads.examples import FIG7_SOURCE


def deps_of(src: str, kind: str | None = None) -> set[tuple]:
    loop = parse_loop(src)
    out = analyze_dependences(loop)
    return {
        (d.src, d.dst, d.distance, d.kind)
        for d in out
        if kind is None or d.kind == kind
    }


class TestFlowDeps:
    def test_fig7_exact_flow_set(self):
        loop = parse_loop(FIG7_SOURCE)
        flow = {
            (d.src, d.dst, d.distance)
            for d in analyze_dependences(loop)
            if d.kind == "flow"
        }
        assert flow == {
            ("A", "A", 1),
            ("E", "A", 1),
            ("A", "B", 0),
            ("B", "C", 0),
            ("D", "D", 1),
            ("C", "D", 1),
            ("D", "E", 0),
        }

    def test_same_iteration_requires_textual_order(self):
        # t reads A[I] before s writes it -> no flow, only anti
        deps = deps_of("T: Y[I] = A[I]\nS: A[I] = 1")
        assert ("S", "T", 0, "flow") not in deps
        assert ("T", "S", 0, "anti") in deps

    def test_loop_carried_distance_from_offsets(self):
        deps = deps_of("S: A[I] = 1\nT: Y[I] = A[I-3]")
        assert ("S", "T", 3, "flow") in deps

    def test_write_offset_positive(self):
        deps = deps_of("S: A[I+1] = 1\nT: Y[I] = A[I]")
        assert ("S", "T", 1, "flow") in deps

    def test_read_only_arrays_produce_no_deps(self):
        assert deps_of("X[I] = ZP[I] + ZQ[I-1]") == set()

    def test_self_accumulation_array_is_live_in(self):
        # X[I] written once; the same-statement read of X[I] sees the
        # live-in value, not a dependence.
        deps = deps_of("S: X[I] = X[I] + 1")
        assert deps == set()


class TestScalarDeps:
    def test_scalar_accumulation(self):
        deps = deps_of("S: s = s + X[I]")
        assert ("S", "S", 1, "flow") in deps

    def test_scalar_read_before_write(self):
        deps = deps_of("T: Y[I] = s\nS: s = X[I]")
        assert ("S", "T", 1, "flow") in deps
        assert ("T", "S", 0, "anti") in deps

    def test_scalar_write_then_read(self):
        deps = deps_of("S: s = X[I]\nT: Y[I] = s")
        assert ("S", "T", 0, "flow") in deps

    def test_scalar_array_conflict_rejected(self):
        with pytest.raises(DependenceError, match="both"):
            analyze_dependences(parse_loop("S: s = 1\nT: Y[I] = s[I]"))


class TestAntiOutput:
    def test_anti_distance(self):
        deps = deps_of("T: Y[I] = A[I+2]\nS: A[I] = 1")
        assert ("T", "S", 2, "anti") in deps

    def test_output_dependence(self):
        deps = deps_of("S1: A[I] = 1\nS2: A[I] = 2")
        assert ("S1", "S2", 0, "output") in deps

    def test_output_distance(self):
        deps = deps_of("S1: A[I+1] = 1\nS2: A[I] = 2")
        assert ("S1", "S2", 1, "output") in deps


class TestBuildGraph:
    def test_nodes_carry_latencies(self):
        g = build_graph(parse_loop("M{2}: X[I] = X[I-1] * 2"))
        assert g.latency("M") == 2

    def test_flow_only_by_default(self):
        g = build_graph(parse_loop("T: Y[I] = A[I]\nS: A[I+1] = Y[I]"))
        kinds = {e.kind for e in g.edges}
        assert kinds <= {"flow"}

    def test_include_anti_output(self):
        g = build_graph(
            parse_loop("T: Y[I] = A[I+1]\nS: A[I] = Y[I-1]"),
            include_anti=True,
            include_output=True,
        )
        kinds = {e.kind for e in g.edges}
        assert "anti" in kinds

    def test_latency_override(self):
        g = build_graph(
            parse_loop("M: X[I] = X[I-1]"), latencies={"M": 5}
        )
        assert g.latency("M") == 5

    def test_max_distance_filter(self):
        loop = parse_loop("S: A[I] = 1\nT: Y[I] = A[I-9]")
        far = analyze_dependences(loop, max_distance=3)
        assert all(d.distance <= 3 for d in far)

    def test_guard_dependence_materialized(self):
        from repro.lang.ifconvert import if_convert

        loop = if_convert(
            parse_loop("IF X[I-1] > 0 THEN\n A: Y[I] = 1\nENDIF")
        )
        g = build_graph(loop)
        pred_label = [n for n in g.node_names() if n.startswith("P")][0]
        assert any(
            e.src == pred_label and e.dst == "A" and e.distance == 0
            for e in g.edges
        )
