"""Exact deterministic regression pins.

Every scheduler and simulator in this library is deterministic, so the
headline artifacts have *exact* expected values on any machine.  These
pins catch silent behavioural drift that tolerance-based tests would
absorb (a changed tie-break, a perturbed hash, a reordered loop).  If
a deliberate algorithm change moves one of these numbers, update the
pin together with EXPERIMENTS.md.
"""

import pytest

from repro.baselines.doacross import schedule_doacross
from repro.core.scheduler import schedule_loop
from repro.sim.fastpath import evaluate
from repro.workloads import (
    adaptive_filter,
    cytron86,
    elliptic_filter,
    fig7,
    livermore18,
    random_cyclic_loop,
)

N = 100

#: workload -> (makespan@100, pattern period, iteration shift, processors)
PINS = {
    "fig7": (fig7, 300, 6, 2, 2),
    "cytron86": (cytron86, 605, 6, 1, 4),
    "livermore18": (livermore18, 2204, 57, 3, 6),
    "elliptic": (elliptic_filter, 3010, 90, 3, 4),
    "adaptive": (adaptive_filter, 602, 12, 2, 3),
}


@pytest.mark.parametrize("name", sorted(PINS))
def test_workload_pins(name):
    factory, makespan, period, shift, procs = PINS[name]
    w = factory()
    s = schedule_loop(w.graph, w.machine)
    assert s.compile_schedule(N).makespan() == makespan
    assert s.pattern is not None
    assert s.pattern.period == period
    assert s.pattern.iter_shift == shift
    assert s.total_processors == procs


#: seed -> (cyclic nodes, runtime makespan @50 iterations, mm=3 worst)
RANDOM_PINS = {2: (7, 296), 9: (12, 495), 13: (15, 654)}


@pytest.mark.parametrize("seed", sorted(RANDOM_PINS))
def test_random_loop_pins(seed):
    nodes, makespan = RANDOM_PINS[seed]
    w = random_cyclic_loop(seed, mm=3)
    assert len(w.graph) == nodes
    s = schedule_loop(w.graph, w.machine)
    t = evaluate(
        w.graph, s.program(50), w.machine.comm, use_runtime=True
    ).makespan()
    assert t == makespan


def test_doacross_pins():
    w = fig7()
    da = schedule_doacross(w.graph, w.machine.with_processors(4))
    assert da.delay == 7
    assert da.compile_schedule(N).makespan() == 698
