"""Assorted edge cases across modules."""

import pytest
from hypothesis import given, settings

from repro._types import Op
from repro.core.schedule import Schedule
from repro.core.scheduler import schedule_loop
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm
from repro.machine.model import Machine
from repro.report import gantt

from tests.conftest import connected_cyclic_graphs


class TestScheduleEdges:
    def test_empty_schedule_metrics(self):
        s = Schedule(2)
        assert s.makespan() == 0
        assert s.utilization() == 0.0
        assert s.used_processors() == []
        assert s.placements() == []

    def test_order_of_empty_processors(self):
        s = Schedule(3)
        s.add(Op("A", 0), 1, 0, 1)

        g = DependenceGraph()
        g.add_node("A")
        s.validate(g)
        assert s.order() == [[], [Op("A", 0)], []]


class TestGanttEdges:
    def test_empty_schedule_renders_header_only(self):
        text = gantt(Schedule(2))
        assert text.splitlines()[0].strip().startswith("cycle")
        assert len(text.splitlines()) == 1

    def test_cell_width_trims_labels(self):
        s = Schedule(1)
        s.add(Op("LONGNODENAME", 0), 0, 0, 1)
        text = gantt(s, cell_width=4)
        assert "LONG" in text and "LONGN" not in text


class TestLatencyMonotonicity:
    @given(connected_cyclic_graphs(max_nodes=4))
    @settings(max_examples=20)
    def test_increasing_a_latency_never_speeds_up(self, g):
        """Raising one node's latency can only slow the steady rate."""
        m = Machine(3, UniformComm(1))
        base = schedule_loop(g, m)
        bumped_graph = g.with_latencies(
            {g.node_names()[0]: g.latency(g.node_names()[0]) + 2}
        )
        bumped = schedule_loop(bumped_graph, m)
        n = 10
        assert (
            bumped.compile_schedule(n).makespan() + 1e-9
            >= base.compile_schedule(n).makespan() - 2 * n
        )
        # steady rates strictly ordered by the work bound argument when
        # the graph is a single serial chain; in general allow equality
        assert (
            bumped.steady_cycles_per_iteration()
            >= base.steady_cycles_per_iteration() - 1e-9
        )


class TestMoreProcessorsNeverHurtCompletely:
    @given(connected_cyclic_graphs(max_nodes=4))
    @settings(max_examples=15)
    def test_single_processor_is_serial(self, g):
        m = Machine(1, UniformComm(2))
        s = schedule_loop(g, m)
        assert s.steady_cycles_per_iteration() == pytest.approx(
            float(g.total_latency())
        )
        n = 7
        assert s.compile_schedule(n).makespan() == n * g.total_latency()


class TestDoacrossEdge:
    def test_explicit_body_order_beats_reorder_flag(self, fig7_workload):
        from repro.baselines.doacross import schedule_doacross

        m = Machine(2, UniformComm(2))
        da = schedule_doacross(
            fig7_workload.graph,
            m,
            body_order=["A", "B", "C", "D", "E"],
            reorder="exhaustive",  # ignored: explicit order wins
        )
        assert da.body_order == ("A", "B", "C", "D", "E")

    def test_single_iteration_program(self, fig7_workload):
        from repro.baselines.doacross import schedule_doacross

        m = Machine(3, UniformComm(2))
        da = schedule_doacross(fig7_workload.graph, m)
        sched = da.compile_schedule(1)
        sched.validate(fig7_workload.graph, m.comm, iterations=1)
        assert sched.makespan() == 5


class TestWorkloadBase:
    def test_workload_validates_graph_on_construction(self):
        from repro.machine.model import Machine
        from repro.workloads.base import Workload

        g = DependenceGraph("bad")
        g.add_node("A")
        g.add_node("B")
        g.add_edge("A", "B")
        g.add_edge("B", "A")  # intra-iteration cycle
        with pytest.raises(Exception):
            Workload(name="bad", graph=g, machine=Machine(2))
