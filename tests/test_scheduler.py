"""The full scheduler (paper Fig. 6) end to end."""

import pytest
from hypothesis import given, settings

from repro._types import Op
from repro.core.scheduler import CombinedLoop, ScheduledLoop, schedule_loop
from repro.errors import SchedulingError
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm
from repro.machine.model import Machine
from repro.metrics import percentage_parallelism, sequential_time

from tests.conftest import chain_graph, loop_graphs


class TestFig7:
    def test_sp_matches_paper(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        n = 100
        sched = s.compile_schedule(n)
        sched.validate(fig7_workload.graph, machine2.comm, iterations=n)
        sp = percentage_parallelism(
            sequential_time(fig7_workload.graph, n), sched.makespan()
        )
        assert sp == pytest.approx(40.0, abs=0.5)

    def test_program_partitions_all_instances(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        prog = s.program(10)
        ops = [op for row in prog for op in row]
        assert sorted(ops) == sorted(fig7_workload.graph.instances(10))

    def test_zero_iterations(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        assert all(not row for row in s.program(0))

    def test_negative_iterations_rejected(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        with pytest.raises(SchedulingError):
            s.program(-1)

    def test_describe(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        text = s.describe()
        assert "cyclic 5" in text and "total processors: 2" in text


class TestDistanceGate:
    def test_distance_over_one_rejected_with_hint(self, machine2):
        g = DependenceGraph()
        g.add_node("A")
        g.add_edge("A", "A", distance=4)
        with pytest.raises(SchedulingError, match="normalize"):
            schedule_loop(g, machine2)

    def test_normalized_graph_schedules(self, machine2):
        from repro.graph.unwind import normalize_distances

        g = DependenceGraph()
        g.add_node("A", 2)
        g.add_edge("A", "A", distance=3)
        u = normalize_distances(g)
        s = schedule_loop(u.graph, machine2)
        # three copies of a latency-2 op, one recurrence each spanning 3
        # original iterations: steady rate 2 unwound-cycles/iteration
        assert s.steady_cycles_per_iteration() == pytest.approx(2.0)


class TestDoall:
    def doall_graph(self):
        g = DependenceGraph("doall")
        g.add_node("A", 2)
        g.add_node("B", 1)
        g.add_edge("A", "B")
        return g

    def test_doall_detected(self, machine4):
        s = schedule_loop(self.doall_graph(), machine4)
        assert isinstance(s, ScheduledLoop) and s.is_doall
        assert s.pattern is None
        assert s.total_processors == 4

    def test_doall_rate(self, machine4):
        s = schedule_loop(self.doall_graph(), machine4)
        assert s.steady_cycles_per_iteration() == pytest.approx(3 / 4)

    def test_doall_program_valid_and_fast(self, machine4):
        g = self.doall_graph()
        s = schedule_loop(g, machine4)
        n = 16
        sched = s.compile_schedule(n)
        sched.validate(g, machine4.comm, iterations=n)
        # 16 iterations of 3 cycles over 4 procs: 12 cycles
        assert sched.makespan() == 12


class TestDisconnected:
    def two_rings(self):
        g = DependenceGraph("two")
        for name in ("a", "b"):
            for i in range(2):
                g.add_node(f"{name}{i}")
        g.add_edge("a0", "a1")
        g.add_edge("a1", "a0", distance=1)
        g.add_edge("b0", "b1")
        g.add_edge("b1", "b0", distance=1)
        return g

    def test_combined_loop(self, machine4):
        g = self.two_rings()
        s = schedule_loop(g, machine4)
        assert isinstance(s, CombinedLoop)
        assert len(s.parts) == 2
        assert "components" in s.describe()

    def test_combined_program_validates(self, machine4):
        g = self.two_rings()
        s = schedule_loop(g, machine4)
        n = 12
        sched = s.compile_schedule(n)
        sched.validate(g, machine4.comm, iterations=n)
        # both rings run concurrently at 2 cycles/iter
        assert sched.makespan() == 24
        assert s.steady_cycles_per_iteration() == pytest.approx(2.0)

    def test_components_on_disjoint_processors(self, machine4):
        g = self.two_rings()
        s = schedule_loop(g, machine4)
        prog = s.program(6)
        for row in prog:
            names = {op.node[0] for op in row}
            assert len(names) <= 1


class TestWorkloadsValidate:
    @pytest.mark.parametrize(
        "fixture",
        ["cytron_workload", "livermore_workload", "elliptic_workload"],
    )
    def test_compile_schedule_validates(self, fixture, request):
        w = request.getfixturevalue(fixture)
        s = schedule_loop(w.graph, w.machine)
        n = 40
        sched = s.compile_schedule(n)
        sched.validate(w.graph, w.machine.comm, iterations=n)

    def test_folded_program_validates(self, livermore_workload):
        w = livermore_workload
        s = schedule_loop(w.graph, w.machine, folding="always")
        assert s.plan is not None and s.plan.fold_into is not None
        n = 30
        sched = s.compile_schedule(n)
        sched.validate(w.graph, w.machine.comm, iterations=n)

    def test_unfolded_program_validates(self, livermore_workload):
        w = livermore_workload
        s = schedule_loop(w.graph, w.machine, folding="never")
        assert s.total_processors > len(s.cyclic_processors)
        n = 30
        sched = s.compile_schedule(n)
        sched.validate(w.graph, w.machine.comm, iterations=n)

    def test_folding_saves_processors(self, livermore_workload):
        w = livermore_workload
        folded = schedule_loop(w.graph, w.machine, folding="always")
        spread = schedule_loop(w.graph, w.machine, folding="never")
        assert folded.total_processors < spread.total_processors


class TestProperties:
    @given(loop_graphs(max_nodes=6))
    @settings(max_examples=30)
    def test_any_loop_schedules_and_validates(self, g):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        n = 8
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)

    @given(loop_graphs(max_nodes=6, ensure_recurrence=True))
    @settings(max_examples=30)
    def test_parallel_never_slower_than_doubled_sequential(self, g):
        m = Machine(3, UniformComm(1))
        s = schedule_loop(g, m)
        n = 10
        par = s.compile_schedule(n).makespan()
        seq = sequential_time(g, n)
        # greedy with comm can exceed sequential, but only by bounded
        # startup/communication overhead, never catastrophically
        assert par <= 2 * seq + 20 * m.comm.max_compile_cost() + 20
