"""Parser tests for the loop mini-language."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import ArrayRef, BinOp, Call, Const, ScalarRef, Select
from repro.lang.parser import parse_expr, parse_loop
from repro.workloads.examples import FIG7_SOURCE


class TestExpressions:
    def test_number(self):
        assert parse_expr("42") == Const(42.0)

    def test_precedence(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert isinstance(e, BinOp) and e.op == "*"

    def test_array_refs(self):
        assert parse_expr("A[I]") == ArrayRef("A", 0)
        assert parse_expr("A[I-2]") == ArrayRef("A", -2)
        assert parse_expr("A[I + 3]") == ArrayRef("A", 3)

    def test_scalar_ref(self):
        assert parse_expr("alpha") == ScalarRef("alpha")

    def test_call(self):
        e = parse_expr("max(A[I], 0)")
        assert isinstance(e, Call) and e.fn == "max" and len(e.args) == 2

    def test_comparison(self):
        e = parse_expr("A[I] <= 3")
        assert isinstance(e, BinOp) and e.op == "<="

    def test_unary_minus(self):
        e = parse_expr("-A[I] + 1")
        assert isinstance(e, BinOp) and e.op == "+"

    def test_subscript_must_use_loop_var(self):
        with pytest.raises(ParseError, match="loop index"):
            parse_expr("A[J]", loop_var="I")

    def test_subscript_offset_must_be_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse_expr("A[I+1.5]")

    def test_bare_loop_index_rejected(self):
        with pytest.raises(ParseError, match="bare loop index"):
            parse_expr("I + 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expr("1 + 2 3")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_expr("A[I] ? 2")


class TestLoops:
    def test_fig7_roundtrip(self):
        loop = parse_loop(FIG7_SOURCE, name="fig7")
        assert loop.var == "I"
        assert loop.labels() == ["A", "B", "C", "D", "E"]
        reparsed = parse_loop(loop.source())
        assert reparsed.labels() == loop.labels()

    def test_default_labels(self):
        loop = parse_loop("X[I] = X[I-1] + 1\nY[I] = X[I]")
        assert loop.labels() == ["S0", "S1"]

    def test_latency_annotation(self):
        loop = parse_loop("M{3}: X[I] = X[I-1] * 2")
        assert loop.assignments()[0].latency == 3

    def test_zero_latency_rejected(self):
        with pytest.raises(ParseError, match="latency"):
            parse_loop("M{0}: X[I] = 1")

    def test_scalar_target(self):
        loop = parse_loop("s = s + X[I]")
        a = loop.assignments()[0]
        assert a.is_scalar and a.target == "s"

    def test_comments_and_blank_lines_ignored(self):
        loop = parse_loop("""
        # setup
        A: X[I] = 1   # trailing comment

        """)
        assert loop.labels() == ["A"]

    def test_custom_loop_var(self):
        loop = parse_loop("FOR K = 1 TO N\n X[K] = X[K-1]\nENDFOR")
        assert loop.var == "K"

    def test_nested_for_rejected(self):
        with pytest.raises(ParseError, match="nested"):
            parse_loop("FOR I = 1 TO N\nFOR J = 1 TO N\nENDFOR\nENDFOR")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_loop("A: X[I] = 1\nA: Y[I] = 2")

    def test_if_blocks(self):
        loop = parse_loop("""
        IF X[I-1] > 0 THEN
          A: Y[I] = 1
        ELSE
          B: Y[I] = 2
        ENDIF
        """)
        assert loop.has_conditionals()
        (blk,) = loop.body
        assert len(blk.then_body) == 1 and len(blk.else_body) == 1

    def test_if_without_endif_rejected(self):
        with pytest.raises(ParseError, match="ENDIF"):
            parse_loop("IF X[I-1] > 0 THEN\n A: Y[I] = 1")

    def test_nested_if(self):
        loop = parse_loop("""
        IF X[I-1] > 0 THEN
          IF X[I-1] > 1 THEN
            A: Y[I] = 1
          ENDIF
        ENDIF
        """)
        (outer,) = loop.body
        (inner,) = outer.then_body
        assert len(inner.then_body) == 1

    def test_malformed_if_header(self):
        with pytest.raises(ParseError, match="IF"):
            parse_loop("IF X[I-1] > 0\n A: Y[I] = 1\nENDIF")

    def test_stray_endif_rejected(self):
        with pytest.raises(ParseError):
            parse_loop("A: X[I] = 1\nENDIF")

    def test_assignment_target_must_be_name(self):
        with pytest.raises(ParseError):
            parse_loop("3 = X[I]")


class TestRoundTripProperty:
    """Parser/printer stability under generated expressions."""

    @staticmethod
    def _expr_strategy():
        import hypothesis.strategies as st

        atoms = st.one_of(
            st.integers(0, 99).map(lambda n: f"{n}"),
            st.sampled_from(["x", "alpha", "B[I]", "B[I-2]", "C[I+1]"]),
        )

        def compose(children):
            return st.one_of(
                st.tuples(children, st.sampled_from("+-*/"), children).map(
                    lambda t: f"({t[0]} {t[1]} {t[2]})"
                ),
                st.tuples(st.sampled_from(["max", "min"]), children, children).map(
                    lambda t: f"{t[0]}({t[1]}, {t[2]})"
                ),
                children.map(lambda e: f"(-{e})"),
            )

        return st.recursive(atoms, compose, max_leaves=8)

    def test_parse_print_parse_is_stable(self):
        from hypothesis import given, settings

        @given(self._expr_strategy())
        @settings(max_examples=80)
        def check(text):
            e1 = parse_expr(text)
            e2 = parse_expr(str(e1))
            assert str(e1) == str(e2)
            assert e1 == e2

        check()

    def test_eval_agrees_after_roundtrip(self):
        from hypothesis import given, settings

        from repro.lang.ast import eval_expr

        @given(self._expr_strategy())
        @settings(max_examples=60)
        def check(text):
            e1 = parse_expr(text)
            e2 = parse_expr(str(e1))
            array = lambda n, i: float(i) + 1.5
            scalar = lambda n: 2.25
            assert eval_expr(e1, 3, array, scalar) == eval_expr(
                e2, 3, array, scalar
            )

        check()
