"""Experiment drivers: the paper's headline numbers must reproduce."""

import pytest

from repro.experiments import (
    measure,
    run_comm_sweep,
    run_fig1,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig11,
    run_fig12,
    run_table1,
)
from repro.workloads import fig7


class TestWorkedExamples:
    def test_fig1_classification(self):
        _, c = run_fig1()
        assert c.flow_in == ("A", "B", "C", "D", "F")
        assert c.cyclic == ("E", "I", "K", "L")
        assert c.flow_out == ("G", "H", "J")

    def test_fig3_pattern_shift(self):
        w, s = run_fig3()
        assert s.pattern is not None
        # a pattern repeating with a finite index difference exists
        assert s.pattern.iter_shift >= 1

    def test_fig7_exact(self):
        m = run_fig7()
        assert m.sp_ours == pytest.approx(40.0, abs=0.2)
        assert m.sp_doacross == 0.0
        assert m.ours_rate == pytest.approx(3.0)

    def test_fig8_reordering_cannot_help(self):
        r = run_fig8()
        assert r.sp_natural == 0.0
        assert r.sp_reordered == 0.0
        assert r.reordered.delay <= r.natural.delay

    def test_fig9_cytron(self):
        m = run_fig9()
        assert m.sp_ours == pytest.approx(72.7, abs=1.0)
        assert m.sp_doacross == pytest.approx(31.8, abs=1.0)

    def test_fig11_livermore(self):
        m = run_fig11()
        assert m.sp_ours == pytest.approx(49.4, abs=3.0)
        assert m.sp_doacross == pytest.approx(12.6, abs=5.0)
        assert m.sp_ours > 2.5 * m.sp_doacross

    def test_fig12_elliptic(self):
        m = run_fig12()
        assert m.sp_ours == pytest.approx(30.9, abs=4.0)
        assert m.sp_doacross == 0.0


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table1(iterations=40)

    def test_shape(self, table):
        assert len(table.rows) == 25
        assert table.mms == [1, 3, 5]

    def test_ours_beats_doacross_almost_always(self, table):
        # paper: 0 losses at mm=1, 1 at mm=3, 2 at mm=5
        for mm in (1, 3, 5):
            assert table.losses(mm) <= 2

    def test_factor_about_three_and_improving(self, table):
        # paper Table 1(b): factors 2.9 / 3.0 / 3.3, improving with mm
        assert 2.0 <= table.factor(1) <= 4.0
        assert table.factor(5) >= table.factor(1)

    def test_averages_in_paper_ballpark(self, table):
        assert table.mean_ours(1) == pytest.approx(47.4, abs=8)
        assert table.mean_doacross(1) == pytest.approx(16.3, abs=6)

    def test_sp_monotone_in_mm_for_ours(self, table):
        assert (
            table.mean_ours(1)
            >= table.mean_ours(3)
            >= table.mean_ours(5)
        )

    def test_sp_never_negative(self, table):
        for row in table.rows:
            for ours, doa in row.sp.values():
                assert ours >= 0.0 and doa >= 0.0


class TestCommSweep:
    def test_profitable_at_seven_x(self):
        pts = run_comm_sweep(
            seeds=range(1, 8), true_ks=(3, 7), iterations=30
        )
        by_k = {p.true_k: p for p in pts}
        # conclusion's claim: still clearly profitable at 7x node time
        assert by_k[7].sp_ours > 20.0
        assert by_k[7].sp_ours > 2 * by_k[7].sp_doacross


class TestMeasure:
    def test_fallback_never_negative(self):
        m = measure(fig7(), iterations=30)
        assert m.sp_ours >= 0.0 and m.sp_doacross >= 0.0

    def test_paper_numbers_attached(self):
        m = measure(fig7(), iterations=10)
        assert m.paper["sp_ours"] == 40.0


class TestMeasureFallback:
    """`fell_back` must be reported, and rate/processors must describe
    the code that actually ran — not the discarded parallel schedule."""

    def _fallback_workload(self):
        # Schedule with a low estimate (k=1) so the scheduler spreads
        # ops across processors, then fluctuate run-time communication
        # so hard that the parallel program is slower than sequential.
        from repro.machine.comm import FluctuatingComm
        from repro.machine.model import Machine
        from repro.workloads import fig7
        from repro.workloads.base import Workload

        base = fig7()
        return Workload(
            name="fallback-stress",
            graph=base.graph,
            machine=Machine(
                processors=4,
                comm=FluctuatingComm(k=1, mm=40, mode="worst", seed=1),
            ),
        )

    def test_fallback_branch_reports_sequential_execution(self):
        m = measure(self._fallback_workload(), iterations=20)
        assert m.fell_back
        assert m.ours == m.sequential  # the fallback won
        assert m.sp_ours == 0.0
        # the *sequential* code ran: one processor, one body/iteration
        assert m.total_processors == 1
        assert m.ours_rate == pytest.approx(5.0)  # fig7 body latency

    def test_parallel_branch_reports_parallel_schedule(self):
        m = measure(fig7(), iterations=30)
        assert not m.fell_back
        assert m.ours < m.sequential
        assert m.ours_rate == pytest.approx(3.0)
        assert m.total_processors > 1

    def test_fell_back_survives_export(self):
        from repro.report import measurement_to_dict

        d = measurement_to_dict(measure(self._fallback_workload(), 20))
        assert d["fell_back"] is True
        assert d["processors"] == 1
