"""Machine and communication-cost models."""

import pytest

from repro._types import Op
from repro.errors import ReproError
from repro.graph.ddg import Edge
from repro.machine.comm import FluctuatingComm, UniformComm, ZeroComm
from repro.machine.model import Machine

E = Edge("a", "b", distance=1)


class TestUniform:
    def test_costs(self):
        c = UniformComm(3)
        assert c.compile_cost(E) == 3
        assert c.runtime_cost(E, Op("a", 5)) == 3
        assert c.max_compile_cost() == 3

    def test_per_edge_override(self):
        c = UniformComm(3)
        e = Edge("a", "b", distance=0, comm=1)
        assert c.compile_cost(e) == 1
        assert c.runtime_cost(e, Op("a", 0)) == 1

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            UniformComm(-1)


class TestZero:
    def test_all_zero(self):
        c = ZeroComm()
        assert c.compile_cost(E) == 0
        assert c.runtime_cost(E, Op("a", 0)) == 0
        assert c.max_compile_cost() == 0


class TestFluctuating:
    def test_compile_cost_is_estimate(self):
        c = FluctuatingComm(k=3, mm=5)
        assert c.compile_cost(E) == 3

    def test_worst_mode_constant(self):
        c = FluctuatingComm(k=3, mm=5, mode="worst")
        for i in range(10):
            assert c.runtime_cost(E, Op("a", i)) == 7  # k + mm - 1

    def test_mm_one_no_fluctuation(self):
        c = FluctuatingComm(k=3, mm=1, mode="uniform")
        assert c.runtime_cost(E, Op("a", 0)) == 3

    def test_uniform_mode_bounds_and_determinism(self):
        c = FluctuatingComm(k=3, mm=4, mode="uniform", seed=1)
        costs = [c.runtime_cost(E, Op("a", i)) for i in range(200)]
        assert all(3 <= x <= 6 for x in costs)
        assert costs == [c.runtime_cost(E, Op("a", i)) for i in range(200)]
        assert len(set(costs)) > 1  # actually fluctuates

    def test_seed_changes_costs(self):
        c1 = FluctuatingComm(k=3, mm=4, mode="uniform", seed=1)
        c2 = FluctuatingComm(k=3, mm=4, mode="uniform", seed=2)
        costs1 = [c1.runtime_cost(E, Op("a", i)) for i in range(50)]
        costs2 = [c2.runtime_cost(E, Op("a", i)) for i in range(50)]
        assert costs1 != costs2

    def test_validation(self):
        with pytest.raises(ReproError):
            FluctuatingComm(k=-1)
        with pytest.raises(ReproError):
            FluctuatingComm(mm=0)
        with pytest.raises(ReproError):
            FluctuatingComm(mode="chaotic")


class TestMachine:
    def test_defaults(self):
        m = Machine()
        assert m.processors == 8
        assert m.k == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            Machine(processors=0)

    def test_with_helpers(self):
        m = Machine(4, UniformComm(2))
        assert m.with_processors(2).processors == 2
        assert m.with_comm(ZeroComm()).k == 0
        assert m.processors == 4  # frozen original untouched

    def test_vliw_like(self):
        m = Machine.vliw_like(16)
        assert m.processors == 16 and m.k == 0
