"""DOT export."""

from repro.core.classify import classify
from repro.graph.dot import to_dot
from repro.workloads import fig1, fig7


class TestDot:
    def test_structure(self):
        w = fig7()
        dot = to_dot(w.graph)
        assert dot.startswith('digraph "fig7"')
        assert dot.rstrip().endswith("}")
        assert '"A" -> "B";' in dot

    def test_loop_carried_edges_dashed_and_labelled(self):
        dot = to_dot(fig7().graph)
        assert 'style=dashed, label="1"' in dot

    def test_latency_labels(self):
        from repro.workloads import livermore18

        dot = to_dot(livermore18().graph)
        assert "(2)" in dot  # multiply latency shown

    def test_classification_colours(self):
        w = fig1()
        dot = to_dot(w.graph, classification=classify(w.graph))
        assert dot.count("fillcolor=") >= len(w.graph)
        assert "legend" in dot

    def test_quoting(self):
        from repro.graph.ddg import DependenceGraph

        g = DependenceGraph('we"ird')
        g.add_node("n")
        dot = to_dot(g)
        assert r"we\"ird" in dot

    def test_anti_edges_greyed(self):
        from repro.lang import build_graph, parse_loop

        g = build_graph(
            parse_loop("T: Y[I] = A[I+1]\nS: A[I] = 1"),
            include_anti=True,
        )
        dot = to_dot(g)
        assert 'xlabel="anti"' in dot
