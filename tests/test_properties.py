"""End-to-end property tests over random loop graphs.

These tie the whole system together: for arbitrary generated loops the
scheduler must produce valid, complete, dataflow-correct programs whose
two simulator implementations agree, whose pattern expansion is
self-consistent across iteration counts, and whose measured times obey
the theoretical bounds.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Op
from repro.baselines.doacross import schedule_doacross
from repro.codegen.interp import verify_graph_dataflow
from repro.codegen.partition import ParallelProgram
from repro.core.classify import classify
from repro.core.scheduler import schedule_loop
from repro.graph.algorithms import critical_recurrence_ratio
from repro.machine.comm import FluctuatingComm, UniformComm
from repro.machine.model import Machine
from repro.metrics import sequential_time
from repro.sim.engine import simulate
from repro.sim.fastpath import evaluate, evaluate_trace

from tests.conftest import connected_cyclic_graphs, fuzz_cases, loop_graphs


class TestSchedulerPipeline:
    @given(loop_graphs(max_nodes=6), st.integers(2, 4))
    @settings(max_examples=30)
    def test_program_complete_and_dataflow_correct(self, g, procs):
        m = Machine(procs, UniformComm(2))
        s = schedule_loop(g, m)
        n = 7
        prog = s.program(n)
        ops = sorted(op for row in prog for op in row)
        assert ops == sorted(g.instances(n))
        verify_graph_dataflow(
            g, ParallelProgram(g, tuple(tuple(r) for r in prog), n)
        )

    @given(loop_graphs(max_nodes=6))
    @settings(max_examples=30)
    def test_engines_agree_on_scheduled_programs(self, g):
        m = Machine(3, FluctuatingComm(k=2, mm=3, mode="uniform", seed=7))
        s = schedule_loop(g, m)
        prog = s.program(6)
        fast = evaluate(g, prog, m.comm, use_runtime=True)
        slow = simulate(g, prog, m.comm, use_runtime=True)
        assert fast.makespan() == slow.schedule.makespan()
        for op in fast.ops():
            assert fast.start(op) == slow.schedule.start(op)

    @given(loop_graphs(max_nodes=6))
    @settings(max_examples=25)
    def test_engines_agree_segment_by_segment(self, g):
        """Both simulators, viewed through the busy/wait/recv segment
        lens of the tracing subsystem, must tell the identical
        per-processor story — not just agree on the makespan."""
        m = Machine(3, FluctuatingComm(k=2, mm=3, mode="uniform", seed=11))
        s = schedule_loop(g, m)
        prog = s.program(6)
        fast = evaluate_trace(g, prog, m.comm, use_runtime=True)
        slow = simulate(g, prog, m.comm, use_runtime=True)
        segments = fast.segments()
        assert segments == slow.segments()

        # segments tile each used processor's timeline exactly
        makespan = fast.schedule.makespan()
        per_proc: dict[int, list] = {}
        for seg in segments:
            per_proc.setdefault(seg.proc, []).append(seg)
        for ordered in per_proc.values():
            assert ordered[0].start == 0
            assert ordered[-1].end == makespan
            for a, b in zip(ordered, ordered[1:]):
                assert a.end == b.start
        busy = sum(s_.cycles for s_ in segments if s_.kind == "busy")
        assert busy == sum(
            g.latency(op.node) for op in fast.schedule.ops()
        )

    @given(connected_cyclic_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_pattern_expansion_consistent_across_n(self, g):
        """Expanding to N and to N' > N must agree on the overlap."""
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        assert s.pattern is not None
        small = s.pattern.expand(5)
        large = s.pattern.expand(11)
        for p in small.placements():
            q = large.placement(p.op)
            assert (q.start, q.proc) == (p.start, p.proc)

    @given(connected_cyclic_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_makespan_bounds(self, g):
        """recurrence bound * N <= parallel time; and the steady rate
        never exceeds serial-plus-slack."""
        m = Machine(3, UniformComm(1))
        s = schedule_loop(g, m)
        n = 12
        par = s.compile_schedule(n).makespan()
        assert par >= critical_recurrence_ratio(g) * n - g.total_latency()
        assert par >= n  # at least one cycle per iteration

    @given(connected_cyclic_graphs(max_nodes=5), st.integers(0, 3))
    @settings(max_examples=25)
    def test_runtime_at_least_compile_time(self, g, mm_extra):
        """Fluctuation can only delay execution, never speed it up."""
        base = FluctuatingComm(k=2, mm=1)
        fluct = FluctuatingComm(k=2, mm=1 + mm_extra, mode="worst")
        s = schedule_loop(g, Machine(3, base))
        prog = s.program(8)
        t_compile = evaluate(g, prog, base, use_runtime=True).makespan()
        t_runtime = evaluate(g, prog, fluct, use_runtime=True).makespan()
        assert t_runtime >= t_compile


class TestDoacrossProperties:
    @given(loop_graphs(max_nodes=6), st.integers(1, 4))
    @settings(max_examples=30)
    def test_doacross_program_complete_and_valid(self, g, procs):
        m = Machine(procs, UniformComm(1))
        da = schedule_doacross(g, m)
        n = 6
        sched = da.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)

    @given(loop_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_doacross_never_beats_recurrence_bound(self, g):
        m = Machine(4, UniformComm(1))
        da = schedule_doacross(g, m)
        n = 10
        par = da.compile_schedule(n).makespan()
        assert par >= critical_recurrence_ratio(g) * n - g.total_latency()

    @given(loop_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_ours_never_worse_than_doacross_steady(self, g):
        """Our rate is bounded by DOACROSS's: the pattern scheduler can
        always mimic iteration interleaving, and greedy earliest-start
        dominates it on every workload we generate."""
        m = Machine(4, UniformComm(1))
        ours = schedule_loop(g, m)
        da = schedule_doacross(g, m)
        n = 20
        ours_t = ours.compile_schedule(n).makespan()
        doa_t = da.compile_schedule(n).makespan()
        # allow startup slack; steady behaviour is what's claimed
        assert ours_t <= doa_t + 2 * g.total_latency() + 20


class TestClassificationScheduling:
    @given(loop_graphs(max_nodes=7))
    @settings(max_examples=30)
    def test_doall_loops_scale_perfectly(self, g):
        c = classify(g)
        if not c.is_doall:
            return
        m = Machine(4, UniformComm(2))
        s = schedule_loop(g, m)
        n = 8
        par = s.compile_schedule(n).makespan()
        seq = sequential_time(g, n)
        # work bound over the processors actually provisioned
        assert par * s.total_processors >= seq
        if all(e.distance == 0 for e in g.edges):
            # truly independent iterations: round-robin is perfect
            assert (
                par
                <= math.ceil(n / m.processors) * g.total_latency()
            )


class TestFuzzGeneratedCases:
    """The same properties, ranged over the fuzz generator families.

    ``fuzz_cases()`` draws from :mod:`repro.fuzz.generators` — deep
    chains, dense meshes, self-recurrences, disconnected components,
    extreme/zero comm costs, mini-language bodies and 1-node loops —
    so hypothesis explores the exact pattern space the coverage-guided
    campaign does, and a failing example shrinks to a reproducible
    ``(pattern, seed)`` pair."""

    @given(fuzz_cases())
    @settings(max_examples=25)
    def test_programs_complete_for_fuzz_cases(self, case):
        s = schedule_loop(case.graph, case.machine())
        n = 5
        prog = s.program(n)
        ops = sorted(op for row in prog for op in row)
        assert ops == sorted(case.graph.instances(n))

    @given(fuzz_cases())
    @settings(max_examples=25)
    def test_engines_agree_on_fuzz_cases(self, case):
        g = case.graph
        m = Machine(
            case.processors,
            FluctuatingComm(k=2, mm=3, mode="uniform", seed=5),
        )
        s = schedule_loop(g, m)
        prog = s.program(5)
        fast = evaluate(g, prog, m.comm, use_runtime=True)
        slow = simulate(g, prog, m.comm, use_runtime=True)
        assert fast.makespan() == slow.schedule.makespan()
        for op in fast.ops():
            assert fast.start(op) == slow.schedule.start(op)

    @given(fuzz_cases(max_seed=2000))
    @settings(max_examples=15)
    def test_full_oracle_battery_holds(self, case):
        from repro.fuzz.oracles import run_oracles

        outcome = run_oracles(case)
        assert outcome.ok, [
            f"{f.oracle}: {f.message}" for f in outcome.failures
        ]


class TestDeadlockTraceExport:
    """A deadlocked run must still yield an exportable partial trace:
    both simulators attach everything that *did* execute (and every
    message that flew) to the DeadlockError."""

    def _deadlocked_program(self):
        from repro.graph.ddg import DependenceGraph

        g = DependenceGraph("dl")
        g.add_node("A", 1)
        g.add_node("B", 1)
        g.add_node("C", 2)
        g.add_edge("A", "B")
        g.add_edge("C", "B")
        # B is queued ahead of its own local predecessor C: deadlock.
        order = [[Op("A", 0)], [Op("B", 0), Op("C", 0)]]
        return g, order

    @pytest.mark.parametrize("engine", [simulate, evaluate_trace])
    def test_partial_trace_exports_cleanly(self, engine):
        from repro.errors import DeadlockError
        from repro.obs import (
            sim_segment_events,
            to_chrome_trace,
            validate_chrome_trace,
        )

        g, order = self._deadlocked_program()
        comm = UniformComm(2)
        with pytest.raises(DeadlockError) as excinfo:
            engine(g, order, comm, use_runtime=True)
        trace = excinfo.value.trace
        assert trace is not None

        # A executed and its (never-consumed) message to B flew
        segments = trace.segments()
        assert any(
            s.kind == "busy" and s.label == "A[0]" for s in segments
        )
        (msg,) = trace.messages
        assert (msg.src, msg.dst) == (Op("A", 0), Op("B", 0))
        assert msg.arrived == msg.sent + 2

        obj = to_chrome_trace([], extra_events=sim_segment_events(segments))
        assert validate_chrome_trace(obj) == []
        assert obj["traceEvents"]  # the partial run is actually visible
