"""Dedicated emitter tests (beyond the smoke checks in test_codegen)."""

import re

import pytest

from repro._types import Op
from repro.codegen.emit import (
    _concrete_index,
    _subst_index,
    emit_program,
    emit_subloops,
)
from repro.codegen.partition import partition
from repro.core.scheduler import schedule_loop
from repro.workloads import adaptive_filter, cytron86, fig7


class TestIndexRewriting:
    def test_subst_plain(self):
        assert _subst_index("A[I] = B[I]", "I0") == "A[I0] = B[I0]"

    def test_subst_offsets(self):
        assert _subst_index("X[I-1] + Y[I+2]", "I3") == "X[I3-1] + Y[I3+2]"

    def test_subst_compound_symbol(self):
        assert _subst_index("X[I-1]", "I0+1") == "X[I0+1-1]"

    def test_concrete_plain_and_offsets(self):
        assert _concrete_index("A[I] = B[I-1] + C[I+2]", 5) == (
            "A[5] = B[4] + C[7]"
        )

    def test_spaces_in_subscripts(self):
        assert _concrete_index("B[I - 1]", 3) == "B[2]"


class TestEmitProgram:
    def test_ddg_only_uses_placeholder_functions(self):
        w = cytron86()
        s = schedule_loop(w.graph, w.machine)
        text = emit_program(partition(s, 2))
        assert "f_0(...)" in text
        assert "PE0:" in text

    def test_loop_statements_rendered_concretely(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        text = emit_program(partition(s, 3), fig7_workload.loop)
        assert "D[1] = (D[0] + C[0])" in text

    def test_send_receive_pairing(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        text = emit_program(partition(s, 6), fig7_workload.loop)
        sends = len(re.findall(r"\(SEND ", text))
        recvs = len(re.findall(r"\(RECEIVE ", text))
        assert sends == recvs > 0

    def test_scalar_targets_render_without_subscript(self):
        w = adaptive_filter()
        s = schedule_loop(w.graph, w.machine)
        text = emit_program(partition(s, 2), w.loop)
        # predicates are scalars: "p1 = ..." not "p1[0] = ..."
        assert re.search(r"p1 = ", text)


class TestEmitSubloops:
    def test_cytron_flow_in_sends_to_cyclic(self):
        w = cytron86()
        s = schedule_loop(w.graph, w.machine)
        text = emit_subloops(s)
        # flow-in node 6 feeds cyclic node 0 via a distance-1 edge
        assert "(SEND 6[" in text
        # three flow-in processors at residues 0,1,2 with step 3
        assert text.count("# flow-in") == 3
        for r in range(3):
            assert f"FOR I{1 + r} = {r} TO N STEP 3" in text

    def test_flow_in_receives_cross_iteration(self):
        w = cytron86()
        s = schedule_loop(w.graph, w.machine)
        text = emit_subloops(s)
        # node 6 of iteration i needs node 13 of i-1, on another FI proc
        assert re.search(r"\(RECEIVE 13\[I\d+-1\] FROM PE\d\)", text)

    def test_kernel_loop_step_matches_shift(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        text = emit_subloops(s, fig7_workload.loop)
        assert s.pattern.iter_shift == 2
        assert "STEP 2" in text

    def test_prelude_emitted_concretely(self):
        w = cytron86()
        s = schedule_loop(w.graph, w.machine)
        # cytron's pattern starts at 0 with no prelude; build a case
        # with a prelude via fig3
        from repro.workloads import fig3

        w3 = fig3()
        s3 = schedule_loop(w3.graph, w3.machine)
        if s3.pattern.prelude:
            text = emit_subloops(s3)
            first_kernel = text.index("FOR ")
            assert "[0]" in text[:first_kernel]
