"""AST evaluation and rendering."""

import pytest

from repro.errors import ReproError
from repro.lang.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Const,
    ScalarRef,
    Select,
    UnaryOp,
    eval_expr,
    walk_expr,
)
from repro.lang.parser import parse_expr


def ev(text: str, array=None, scalar=None, iteration: int = 0) -> float:
    return eval_expr(
        parse_expr(text),
        iteration,
        array or (lambda n, i: float(i)),
        scalar or (lambda n: 2.0),
    )


class TestEval:
    def test_arithmetic(self):
        assert ev("1 + 2 * 3 - 4") == 3.0

    def test_division_is_total(self):
        assert ev("1 / 0") == 0.0

    def test_array_indexing_uses_iteration(self):
        assert ev("A[I-2]", iteration=10) == 8.0

    def test_scalar(self):
        assert ev("x * x") == 4.0

    def test_comparisons(self):
        assert ev("3 <= 3") == 1.0
        assert ev("3 < 3") == 0.0
        assert ev("2 != 3") == 1.0

    def test_unary(self):
        assert ev("-(2)") == -2.0
        assert ev("!0") == 1.0

    def test_intrinsics(self):
        assert ev("sqrt(16)") == 4.0
        assert ev("abs(0 - 5)") == 5.0
        assert ev("max(1, 2)") == 2.0
        assert ev("min(1, 2)") == 1.0
        assert ev("sign(0 - 9)") == -1.0

    def test_sqrt_of_negative_is_total(self):
        assert ev("sqrt(0 - 4)") == 2.0

    def test_exp_clamped(self):
        assert ev("exp(1000)") < 1e30

    def test_unknown_intrinsic(self):
        with pytest.raises(ReproError, match="intrinsic"):
            ev("frobnicate(1)")

    def test_select_lazy(self):
        e = Select(Const(1.0), Const(5.0), BinOp("/", Const(1.0), Const(0.0)))
        assert eval_expr(e, 0, lambda n, i: 0.0, lambda n: 0.0) == 5.0


class TestStructure:
    def test_walk_visits_all(self):
        e = parse_expr("A[I] + max(b, 2)")
        kinds = [type(x).__name__ for x in walk_expr(e)]
        assert kinds.count("BinOp") == 1
        assert "Call" in kinds and "ArrayRef" in kinds

    def test_str_roundtrips_through_parser(self):
        for text in ("(A[I-1] + B[I])", "max(x, 2)", "((a * b) / c)"):
            e = parse_expr(text)
            again = parse_expr(str(e))
            assert str(again) == str(e)

    def test_assign_source(self):
        a = Assign("L", "X", 0, parse_expr("X[I-1] + 1"), latency=2)
        assert a.source() == "L{2}: X[I] = (X[I-1] + 1)"

    def test_assign_reads(self):
        a = Assign("L", "X", 0, parse_expr("X[I-1] + y"))
        reads = a.reads()
        assert ArrayRef("X", -1) in reads and ScalarRef("y") in reads

    def test_scalar_assign_source(self):
        a = Assign("L", "s", None, Const(1.0))
        assert a.source() == "L: s = 1"
        assert a.is_scalar
