"""Property-based chaos tests: random DDGs x random fault plans.

The fuzzer drives arbitrary generated loops through the full
pipeline -> simulator path under arbitrary seeded fault plans and pins
the two contracts the chaos subsystem promises:

(a) a zero-fault chaos run is *bit-identical* to the closed-form
    fastpath (and therefore to the plain engine, which test_properties
    already ties to the fastpath);
(b) every lossy run either completes with a correct,
    dependence-respecting trace, or raises a structured error carrying
    a partial trace — and, thanks to the watchdog, never hangs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    DelayJitter,
    FaultPlan,
    FaultyFabric,
    MessageDuplication,
    MessageLoss,
    run_resilient,
)
from repro.core.scheduler import schedule_loop
from repro.errors import SimulationError
from repro.machine.comm import UniformComm
from repro.machine.model import Machine
from repro.sim.engine import simulate
from repro.sim.fastpath import evaluate

from tests.conftest import loop_graphs

ITER = 6


def lossy_plans(seeds=st.integers(0, 10_000)):
    """Plans mixing jitter, loss and duplication with random knobs."""
    return st.builds(
        lambda seed, jit, loss, retx, rto, dup: FaultPlan(
            seed,
            (
                DelayJitter(max_extra=jit, prob=0.7),
                MessageLoss(prob=loss, max_retransmits=retx, rto=rto),
                MessageDuplication(prob=dup, copies=1),
            ),
        ),
        seeds,
        st.integers(0, 3),
        st.floats(0.0, 1.0),
        st.integers(0, 2),
        st.integers(1, 4),
        st.floats(0.0, 0.5),
    )


def check_dependences(graph, program, schedule):
    """Every dependence edge is respected by the executed trace."""
    present = {op for row in program for op in row}
    by_node = {}
    for op in present:
        by_node.setdefault(op.node, {})[op.iteration] = op
    for edge in graph.edges:
        for dst in by_node.get(edge.dst, {}).values():
            src = by_node.get(edge.src, {}).get(dst.iteration - edge.distance)
            if src is None:
                continue  # live-in: satisfied at time 0
            assert schedule.start(dst) >= schedule.finish(src), (
                f"{edge.src}->{edge.dst} violated at iteration "
                f"{dst.iteration}"
            )


class TestZeroFaultDifferential:
    @given(loop_graphs(max_nodes=6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_empty_plan_is_bit_identical_to_fastpath(self, g, seed):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        prog = s.program(ITER)
        fast = evaluate(g, prog, m.comm, use_runtime=True)
        chaos = simulate(
            g,
            prog,
            m.comm,
            use_runtime=True,
            fabric=FaultyFabric(FaultPlan(seed)),
        )
        assert chaos.schedule.makespan() == fast.makespan()
        for op in fast.ops():
            assert chaos.schedule.start(op) == fast.start(op)
        assert chaos.faults == []


class TestLossyRunsNeverHang:
    @given(loop_graphs(max_nodes=6), lossy_plans())
    @settings(max_examples=40, deadline=None)
    def test_complete_correctly_or_fail_structurally(self, g, plan):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        prog = s.program(ITER)
        fault_free = evaluate(g, prog, m.comm, use_runtime=True).makespan()
        watchdog = 50 * max(1, fault_free)
        try:
            trace = simulate(
                g,
                prog,
                m.comm,
                use_runtime=True,
                fabric=FaultyFabric(plan),
                watchdog=watchdog,
            )
        except SimulationError as err:
            # structured failure: typed, with the partial trace attached
            assert err.trace is not None
            assert err.trace.schedule.makespan() <= watchdog + 1
            return
        # completed: every op ran, no dependence was violated, and
        # faults can only ever delay the schedule, never speed it up
        assert len(list(trace.schedule.placements())) == sum(
            len(r) for r in prog
        )
        check_dependences(g, prog, trace.schedule)
        assert trace.schedule.makespan() >= fault_free

    @given(loop_graphs(max_nodes=5), lossy_plans())
    @settings(max_examples=25, deadline=None)
    def test_fault_sequence_replays_identically(self, g, plan):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        prog = s.program(ITER)

        def run():
            fabric = FaultyFabric(plan)
            try:
                t = simulate(
                    g,
                    prog,
                    m.comm,
                    use_runtime=True,
                    fabric=fabric,
                    watchdog=50 * ITER * max(1, g.total_latency()),
                )
                return ("ok", t.schedule.makespan(), tuple(t.faults))
            except SimulationError as err:
                return (type(err).__name__, str(err), tuple(fabric.events))

        assert run() == run()


class TestResilientExecutor:
    @given(loop_graphs(max_nodes=5), lossy_plans())
    @settings(max_examples=25, deadline=None)
    def test_never_raises_for_in_model_faults(self, g, plan):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        r = run_resilient(s, ITER, plan)
        assert r.outcome in ("ok", "recovered", "stalled", "deadlocked")
        assert r.completed == (r.makespan is not None)
        if not r.completed:
            assert r.error
