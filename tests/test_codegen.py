"""Partitioned-code generation, emission and dataflow verification."""

import pytest
from hypothesis import given, settings

from repro._types import Op
from repro.baselines.doacross import schedule_doacross
from repro.codegen.emit import emit_program, emit_subloops
from repro.codegen.interp import (
    reference_graph_values,
    run_parallel_graph,
    run_parallel_loop,
    verify_against_sequential,
    verify_graph_dataflow,
)
from repro.codegen.partition import ParallelProgram, partition
from repro.core.scheduler import schedule_loop
from repro.errors import CodegenError, DeadlockError, ValidationError
from repro.machine.comm import UniformComm
from repro.machine.model import Machine

from tests.conftest import connected_cyclic_graphs, loop_graphs


@pytest.fixture
def fig7_program(fig7_workload, machine2):
    s = schedule_loop(fig7_workload.graph, machine2)
    return partition(s, 10)


class TestPartition:
    def test_all_ops_present(self, fig7_workload, fig7_program):
        assert sorted(fig7_program.ops()) == sorted(
            fig7_workload.graph.instances(10)
        )

    def test_transfers_cross_processors_only(self, fig7_program):
        proc = fig7_program.assignment()
        for t in fig7_program.transfers():
            assert t.src_proc != t.dst_proc
            assert proc[t.src] == t.src_proc and proc[t.dst] == t.dst_proc

    def test_receives_match_sends(self, fig7_program):
        sends = {
            (t.src, t.dst)
            for op in fig7_program.ops()
            for t in fig7_program.sends_of(op)
        }
        recvs = {
            (t.src, t.dst)
            for op in fig7_program.ops()
            for t in fig7_program.receives_of(op)
        }
        assert sends == recvs

    def test_duplicate_assignment_rejected(self, fig7_workload):
        with pytest.raises(CodegenError, match="two processors"):
            ParallelProgram(
                fig7_workload.graph,
                ((Op("A", 0),), (Op("A", 0),)),
                1,
            )

    def test_partition_needs_iterations(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        with pytest.raises(CodegenError):
            partition(s, 0)


class TestLoopInterp:
    def test_fig7_matches_sequential(self, fig7_workload, fig7_program):
        verify_against_sequential(fig7_workload.loop, fig7_program)

    def test_messages_counted(self, fig7_workload, fig7_program):
        run = run_parallel_loop(fig7_workload.loop, fig7_program)
        assert run.messages == len(fig7_program.transfers())

    def test_detects_missing_route(self, fig7_workload, machine2):
        """Moving an op to another processor without its input breaks."""
        s = schedule_loop(fig7_workload.graph, machine2)
        rows = [list(r) for r in s.program(6)]
        # drop every A from the program: its consumers read live-ins
        rows = [
            [op for op in row if op.node != "A"] for row in rows
        ]
        broken = ParallelProgram(
            fig7_workload.graph, tuple(tuple(r) for r in rows), 6
        )
        with pytest.raises(
            ValidationError, match="not routed|never computed"
        ):
            verify_against_sequential(fig7_workload.loop, broken)

    def test_detects_bad_cross_assignment(self, fig7_workload):
        """A consumer on a lone processor never receives: mismatch."""
        g = fig7_workload.graph
        rows = [[], []]
        for i in range(4):
            for n in g.node_names():
                rows[0].append(Op(n, i))
        # strip B's producer edge by moving B alone with no change to
        # edges: B still receives (edges exist), so instead corrupt by
        # reordering D before its producer C cross-iteration: swap two
        # iterations of D on the same processor
        d_idx = [i for i, op in enumerate(rows[0]) if op.node == "D"]
        rows[0][d_idx[0]], rows[0][d_idx[1]] = (
            rows[0][d_idx[1]],
            rows[0][d_idx[0]],
        )
        broken = ParallelProgram(g, tuple(tuple(r) for r in rows), 4)
        with pytest.raises((ValidationError, DeadlockError)):
            verify_against_sequential(fig7_workload.loop, broken)

    @pytest.mark.parametrize("folding", ["always", "never"])
    def test_livermore_folding_variants_verify(
        self, livermore_workload, folding
    ):
        w = livermore_workload
        s = schedule_loop(w.graph, w.machine, folding=folding)
        prog = partition(s, 8)
        verify_against_sequential(w.loop, prog)

    def test_elliptic_verifies(self, elliptic_workload):
        w = elliptic_workload
        s = schedule_loop(w.graph, w.machine)
        verify_against_sequential(w.loop, partition(s, 6))

    def test_doacross_program_verifies(self, fig7_workload):
        m = Machine(3, UniformComm(2))
        da = schedule_doacross(fig7_workload.graph, m)
        prog = ParallelProgram(
            fig7_workload.graph,
            tuple(tuple(r) for r in da.program(9)),
            9,
        )
        verify_against_sequential(fig7_workload.loop, prog)


class TestGraphInterp:
    def test_reference_values_deterministic(self, cytron_workload):
        g = cytron_workload.graph
        assert reference_graph_values(g, 3) == reference_graph_values(g, 3)

    def test_cytron_verifies(self, cytron_workload):
        w = cytron_workload
        s = schedule_loop(w.graph, w.machine)
        verify_graph_dataflow(w.graph, partition(s, 9))

    def test_detects_dropped_producer(self, cytron_workload):
        w = cytron_workload
        s = schedule_loop(w.graph, w.machine)
        rows = [list(r) for r in s.program(6)]
        rows = [[op for op in row if op != Op("0", 3)] for row in rows]
        broken = ParallelProgram(w.graph, tuple(tuple(r) for r in rows), 6)
        with pytest.raises(ValidationError, match="not routed"):
            verify_graph_dataflow(w.graph, broken)

    @given(connected_cyclic_graphs(max_nodes=5))
    @settings(max_examples=25)
    def test_scheduled_cyclic_graphs_always_route(self, g):
        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m)
        verify_graph_dataflow(g, partition(s, 7))


class TestEmit:
    def test_program_emission_mentions_sends(self, fig7_workload, fig7_program):
        text = emit_program(fig7_program, fig7_workload.loop)
        assert "PARBEGIN" in text and "PAREND" in text
        assert "(SEND" in text and "(RECEIVE" in text
        assert "A[0] = (A[-1] + E[-1])" in text

    def test_subloops_shape(self, fig7_workload, machine2):
        s = schedule_loop(fig7_workload.graph, machine2)
        text = emit_subloops(s, fig7_workload.loop)
        assert "FOR I0 = 0 TO N STEP 2" in text
        assert "(RECEIVE A[I0-1] FROM PE1)" in text
        assert text.count("ENDFOR") == 2

    def test_subloops_flow_in_loops(self, cytron_workload):
        s = schedule_loop(cytron_workload.graph, cytron_workload.machine)
        text = emit_subloops(s)
        assert "STEP 3" in text  # three flow-in processors
        assert "# flow-in" in text

    def test_subloops_rejects_doall(self, machine2):
        from repro.graph.ddg import DependenceGraph

        g = DependenceGraph()
        g.add_node("A")
        s = schedule_loop(g, machine2)
        with pytest.raises(CodegenError, match="DOALL"):
            emit_subloops(s)

    def test_subloops_rejects_folded(self, livermore_workload):
        w = livermore_workload
        s = schedule_loop(w.graph, w.machine, folding="always")
        with pytest.raises(CodegenError, match="folded"):
            emit_subloops(s)
