"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import settings

from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm
from repro.machine.model import Machine
from repro.workloads import cytron86, elliptic_filter, fig1, fig3, fig7, livermore18

settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _isolate_default_cache():
    """Reset the process-wide artifact cache around every test.

    The ``default_cache()`` singleton otherwise leaks state across
    tests: hit/miss counters accumulate and entries survive between
    test modules, so a test asserting cache behaviour could pass or
    fail depending on what ran before it.
    """
    from repro.pipeline import default_cache

    default_cache().clear()
    yield
    default_cache().clear()
@pytest.fixture
def fig7_workload():
    return fig7()


@pytest.fixture
def fig1_workload():
    return fig1()


@pytest.fixture
def fig3_workload():
    return fig3()


@pytest.fixture
def cytron_workload():
    return cytron86()


@pytest.fixture
def livermore_workload():
    return livermore18()


@pytest.fixture
def elliptic_workload():
    return elliptic_filter()


@pytest.fixture
def machine2():
    return Machine(processors=2, comm=UniformComm(2))


@pytest.fixture
def machine4():
    return Machine(processors=4, comm=UniformComm(2))


def chain_graph(n: int = 4, latency: int = 1) -> DependenceGraph:
    """a0 -> a1 -> ... -> a(n-1) -> a0 (loop-carried): one recurrence."""
    g = DependenceGraph(f"chain{n}")
    for i in range(n):
        g.add_node(f"a{i}", latency)
    for i in range(n - 1):
        g.add_edge(f"a{i}", f"a{i+1}")
    g.add_edge(f"a{n-1}", "a0", distance=1)
    return g


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def loop_graphs(
    draw,
    max_nodes: int = 8,
    max_latency: int = 3,
    ensure_recurrence: bool = False,
):
    """Random loop dependence graphs with distances in {0, 1}.

    Distance-0 edges only go from lower to higher node index, so the
    body is always executable; distance-1 edges are unrestricted.
    """
    n = draw(st.integers(2, max_nodes))
    g = DependenceGraph("hyp")
    lats = draw(
        st.lists(
            st.integers(1, max_latency), min_size=n, max_size=n
        )
    )
    for i in range(n):
        g.add_node(f"v{i}", lats[i])
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    sd = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=2 * n)
    ) if pairs else []
    for i, j in sd:
        g.add_edge(f"v{i}", f"v{j}", distance=0)
    all_pairs = [(i, j) for i in range(n) for j in range(n)]
    lcd = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=2 * n)
    )
    for i, j in lcd:
        g.add_edge(f"v{i}", f"v{j}", distance=1)
    if ensure_recurrence:
        from repro.graph.algorithms import nontrivial_sccs

        if not nontrivial_sccs(g):
            i = draw(st.integers(0, n - 1))
            try:
                g.add_edge(f"v{i}", f"v{i}", distance=1)
            except Exception:
                pass
    return g


@st.composite
def connected_cyclic_graphs(draw, max_nodes: int = 6, max_latency: int = 3):
    """Connected graphs that are entirely Cyclic (for Cyclic-sched).

    Built as a loop-carried ring plus random chords, so every node has
    a predecessor and a successor and the whole graph is one SCC.
    """
    n = draw(st.integers(1, max_nodes))
    g = DependenceGraph("hyp-cyclic")
    for i in range(n):
        g.add_node(f"v{i}", draw(st.integers(1, max_latency)))
    if n == 1:
        g.add_edge("v0", "v0", distance=1)
        return g
    for i in range(n - 1):
        g.add_edge(f"v{i}", f"v{i+1}", distance=0)
    g.add_edge(f"v{n-1}", "v0", distance=1)
    chords = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n,
        )
    )
    for i, j in chords:
        distance = 0 if i < j else 1
        if i == j:
            distance = 1
        try:
            g.add_edge(f"v{i}", f"v{j}", distance=distance)
        except Exception:
            pass
    return g


@st.composite
def fuzz_cases(draw, max_seed: int = 5000):
    """Loop configurations drawn through the fuzz generator families
    (:mod:`repro.fuzz.generators`) — the same weighted pattern space
    the coverage-guided campaign explores, exposed as a hypothesis
    strategy so property tests range over deep chains, dense meshes,
    self-recurrences, disconnected components, extreme/zero comm
    costs, mini-language bodies and degenerate 1-node loops.

    Shrinking happens over ``(pattern, seed)``: a failing example
    reports the exact reproducible case id.
    """
    from repro.fuzz.generators import PATTERN_NAMES, generate_case

    pattern = draw(st.sampled_from(PATTERN_NAMES))
    seed = draw(st.integers(0, max_seed))
    return generate_case(pattern, seed)
