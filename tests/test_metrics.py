"""Metrics."""

import pytest

from repro.errors import ReproError
from repro.metrics import (
    ComparisonRow,
    percentage_parallelism,
    sequential_time,
    speedup,
)

from tests.conftest import chain_graph


class TestPercentageParallelism:
    def test_fig7_example(self):
        # 5-cycle body at 3 cycles/iteration: the paper's 40%
        assert percentage_parallelism(500, 300) == pytest.approx(40.0)

    def test_no_gain_is_zero(self):
        assert percentage_parallelism(100, 100) == 0.0

    def test_slower_is_negative(self):
        assert percentage_parallelism(100, 120) < 0

    def test_requires_positive_sequential(self):
        with pytest.raises(ReproError):
            percentage_parallelism(0, 10)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100, 25) == 4.0

    def test_requires_positive_parallel(self):
        with pytest.raises(ReproError):
            speedup(100, 0)


class TestSequentialTime:
    def test_latency_sum(self):
        g = chain_graph(3, latency=2)
        assert sequential_time(g, 10) == 60

    def test_zero_iterations(self):
        assert sequential_time(chain_graph(2), 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            sequential_time(chain_graph(2), -1)


class TestComparisonRow:
    def test_derived_numbers(self):
        r = ComparisonRow("w", sequential=200, ours=100, baseline=160)
        assert r.sp_ours == 50.0
        assert r.sp_baseline == pytest.approx(20.0)
        assert r.factor == pytest.approx(1.6)
