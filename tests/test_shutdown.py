"""Graceful-shutdown regression tests (SIGTERM/SIGINT artifact flush).

Each test drives ``repro-mimd`` in a subprocess, kills it mid-run, and
validates what landed on disk: the exit code must be 128+signum and
the pending ``--json`` / ``--trace-out`` artifacts must be flushed as
*complete* files — valid JSON, a Chrome trace that passes
``validate_chrome_trace`` — with the payload marked ``interrupted``.
Regression for the old behaviour, where a signal simply killed the
process and left nothing (or a truncated file) behind.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs import validate_chrome_trace

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def spawn(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=cwd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def wait_for(proc, timeout=60):
    try:
        out, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        pytest.fail(f"process hung after signal; output:\n{out}")
    return out


class TestServeShutdown:
    def start_serve(self, tmp_path):
        proc = spawn(
            [
                "serve",
                "--port",
                "0",
                "--json",
                "serve.json",
                "--trace-out",
                "serve_trace.json",
            ],
            cwd=tmp_path,
        )
        banner = proc.stdout.readline()
        assert banner.startswith("serving on "), banner
        port = int(banner.rsplit(":", 1)[1])
        return proc, port

    def compile_one(self, port):
        import urllib.request

        body = json.dumps({"workload": "fig7", "iterations": 40}).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/compile",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.load(resp)

    def test_sigterm_flushes_artifacts(self, tmp_path):
        proc, port = self.start_serve(tmp_path)
        doc = self.compile_one(port)
        assert doc["ok"] is True

        proc.send_signal(signal.SIGTERM)
        out = wait_for(proc)
        assert proc.returncode == 143, out

        flushed = json.load(open(tmp_path / "serve.json"))
        assert flushed["interrupted"] is True
        assert flushed["signal"] == signal.SIGTERM
        counters = flushed["stats"]["metrics"]["counters"]
        assert counters["serve.requests"] == 1
        assert counters["serve.pipeline_runs"] == 1

        trace = json.load(open(tmp_path / "serve_trace.json"))
        problems = validate_chrome_trace(trace)
        assert not problems, problems
        passes = [
            e for e in trace["traceEvents"] if e.get("cat") == "pass"
        ]
        # the request compiled under the tracer before the signal hit
        assert passes, "flushed trace should contain the request's passes"

    def test_sigint_exits_130_with_flush(self, tmp_path):
        proc, port = self.start_serve(tmp_path)
        proc.send_signal(signal.SIGINT)
        out = wait_for(proc)
        assert proc.returncode == 130, out
        flushed = json.load(open(tmp_path / "serve.json"))
        assert flushed["interrupted"] is True
        assert flushed["signal"] == signal.SIGINT


class TestCampaignShutdown:
    def test_sigterm_mid_campaign_abandons_pool_and_flushes(self, tmp_path):
        """SIGTERM during a parallel wave must not hang in pool
        shutdown, and must still write valid --json/--trace-out."""
        proc = spawn(
            [
                "campaign",
                "table1",
                "--workers",
                "2",
                "--iterations",
                "4000",
                "--json",
                "campaign.json",
                "--trace-out",
                "campaign_trace.json",
                "--bench",
                "campaign_bench.json",
            ],
            cwd=tmp_path,
        )
        time.sleep(2.0)  # let the wave get going
        proc.send_signal(signal.SIGTERM)
        t0 = time.time()
        out = wait_for(proc, timeout=30)
        if proc.returncode == 0:
            pytest.skip("campaign finished before the signal landed")
        assert proc.returncode == 143, out
        # the pool was abandoned, not joined: exit is prompt
        assert time.time() - t0 < 20

        flushed = json.load(open(tmp_path / "campaign.json"))
        assert flushed["interrupted"] is True
        trace = json.load(open(tmp_path / "campaign_trace.json"))
        problems = validate_chrome_trace(trace)
        assert not problems, problems
