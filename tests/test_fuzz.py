"""Fuzz harness: generators, oracles, minimizer, campaign.

The load-bearing properties: generation is a pure function of
``(pattern, seed)``, the campaign report is bit-identical however it
is executed, the minimizer converges to a repro that still fails the
same predicate, and a bounded smoke sweep over the real
compile→simulate path finds zero oracle violations.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import ReproError
from repro.fuzz.campaign import (
    DEFAULT_CHUNK,
    FuzzReport,
    case_seed,
    fuzz_cells,
    run_fuzz,
    run_fuzz_shard,
)
from repro.fuzz.generators import (
    PATTERN_NAMES,
    FuzzCase,
    WeightedSampler,
    case_rng,
    generate_case,
)
from repro.fuzz.minimize import minimize_case
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    failure_predicate,
    run_oracles,
)

SMOKE_LOOPS = 500


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
class TestGenerators:
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_same_seed_same_case(self, pattern):
        a = generate_case(pattern, 7)
        b = generate_case(pattern, 7)
        assert a.canonical_json() == b.canonical_json()
        assert a.case_id == b.case_id

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_different_seeds_differ(self, pattern):
        ids = {generate_case(pattern, s).case_id for s in range(6)}
        assert len(ids) > 1

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_generated_graphs_are_valid(self, pattern):
        for seed in range(4):
            case = generate_case(pattern, seed)
            case.graph.validate()
            assert case.processors >= 1

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ReproError, match="unknown fuzz pattern"):
            generate_case("nope", 0)

    def test_case_rng_is_stable_per_key(self):
        assert case_rng("chain", 3).random() == case_rng("chain", 3).random()
        assert case_rng("chain", 3).random() != case_rng("mesh", 3).random()

    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_dict_round_trip(self, pattern):
        case = generate_case(pattern, 11)
        again = FuzzCase.from_dict(case.to_dict())
        assert again.canonical_json() == case.canonical_json()

    def test_singleton_is_degenerate(self):
        sizes = {len(generate_case("singleton", s).graph) for s in range(8)}
        assert sizes == {1}

    def test_source_patterns_carry_source(self):
        for pattern in ("multi_statement", "conditional"):
            case = generate_case(pattern, 2)
            assert case.source is not None
            assert case.loop() is not None
        assert generate_case("conditional", 2).if_converted


class TestWeightedSampler:
    def test_boost_decay_floor_cap(self):
        s = WeightedSampler(boost=2.0, decay=0.5, floor=0.4, cap=3.0)
        p = s.patterns[0]
        s.observe(p, True)
        assert s.weights[p] == 2.0
        s.observe(p, True)
        assert s.weights[p] == 3.0  # capped
        for _ in range(10):
            s.observe(p, False)
        assert s.weights[p] == 0.4  # floored, never starved

    def test_pick_is_deterministic(self):
        a, b = WeightedSampler(), WeightedSampler()
        ra, rb = case_rng("sampler", 5), case_rng("sampler", 5)
        seq_a = [a.pick(ra) for _ in range(50)]
        seq_b = [b.pick(rb) for _ in range(50)]
        assert seq_a == seq_b
        assert set(seq_a) > {seq_a[0]}  # not a constant stream


# ----------------------------------------------------------------------
# oracles
# ----------------------------------------------------------------------
class TestOracles:
    def test_clean_case_passes_everything(self):
        outcome = run_oracles(generate_case("chain", 0))
        assert outcome.ok and outcome.signature

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ReproError, match="unknown oracle"):
            run_oracles(generate_case("chain", 0), oracles=("nope",))
        with pytest.raises(ReproError, match="unknown oracle"):
            failure_predicate("nope")

    def test_compile_crash_is_reported_not_raised(self):
        case = generate_case("chain", 0)
        broken = replace(case, processors=0)
        outcome = run_oracles(broken)
        assert not outcome.ok
        assert [f.oracle for f in outcome.failures] == ["compile"]
        assert "error=ReproError" in outcome.signature

    def test_compile_failure_predicate_reproduces(self):
        broken = replace(generate_case("chain", 0), processors=0)
        pred = failure_predicate("compile")
        assert pred(broken)
        assert not pred(generate_case("chain", 0))


# ----------------------------------------------------------------------
# minimizer
# ----------------------------------------------------------------------
class TestMinimizer:
    def test_converges_to_canonical_self_dep(self):
        case = generate_case("self_dep", 3)

        def has_self_dep(c):
            return any(
                e.src == e.dst and e.distance >= 1 for e in c.graph.edges
            )

        small = minimize_case(case, has_self_dep)
        assert has_self_dep(small)  # still fails the same predicate
        assert len(small.graph) == 1
        assert len(small.graph.edges) == 1
        assert small.graph.node_names() == ["n0"]

    def test_source_cases_shrink_through_the_front_end(self):
        case = generate_case("multi_statement", 1)
        n_chunks = len(
            [ln for ln in case.source.splitlines()[1:-1]]
        )
        assert n_chunks >= 2

        def nonempty(c):
            return len(c.graph) >= 1

        small = minimize_case(case, nonempty)
        # the failure survives without any source, so it gets dropped
        assert small.source is None
        assert len(small.graph) == 1

    def test_passing_case_is_returned_unchanged(self):
        case = generate_case("mesh", 4)
        assert minimize_case(case, lambda c: False) is case

    def test_budget_caps_predicate_calls(self):
        calls = [0]

        def pred(c):
            calls[0] += 1
            return True

        case = generate_case("mesh", 4)
        minimize_case(case, pred, max_checks=5)
        assert calls[0] <= 5

    def test_predicate_exceptions_count_as_not_failing(self):
        case = generate_case("chain", 5)

        def brittle(c):
            if len(c.graph.edges) < len(case.graph.edges):
                raise RuntimeError("boom")
            return True

        small = minimize_case(case, brittle)
        assert small.canonical_json() == case.canonical_json()


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------
class TestCampaign:
    def test_cell_fanout_boundaries(self):
        cells = fuzz_cells(10, seed=3, chunk=4)
        spans = [(c.mapping["start"], c.mapping["count"]) for c in cells]
        assert spans == [(0, 4), (4, 4), (8, 2)]
        assert all(c.kind == "fuzz" for c in cells)
        assert all(c.mapping["seed"] == 3 for c in cells)
        assert fuzz_cells(DEFAULT_CHUNK, 0)[0].mapping["count"] == DEFAULT_CHUNK

    def test_cell_fanout_validation(self):
        with pytest.raises(ReproError):
            fuzz_cells(0)
        with pytest.raises(ReproError):
            fuzz_cells(10, chunk=0)

    def test_shard_payload_is_deterministic(self):
        params = {"seed": 0, "start": 0, "count": 12}
        a = run_fuzz_shard(params)
        b = run_fuzz_shard(params)
        a.pop("latency"), b.pop("latency")
        assert a == b
        assert a["oracle_checks"] == 12 * (len(ORACLE_NAMES) - 1)
        assert sum(v["cases"] for v in a["patterns"].values()) == 12

    def test_fuzz_cell_kind_is_registered(self):
        from repro.runner.cells import Cell, execute_cell

        payload = execute_cell(
            Cell.make("fuzz", seed=1, start=0, count=3)
        )
        assert payload["count"] == 3 and payload["signatures"]

    def test_report_invariant_under_workers_and_chunking(self):
        serial = run_fuzz(40, seed=2, chunk=10)
        pooled = run_fuzz(40, seed=2, chunk=10, workers=2)
        assert serial.to_dict() == pooled.to_dict()

    def test_shards_partition_the_campaign(self):
        whole = run_fuzz(40, seed=2, chunk=10)
        half0 = run_fuzz(40, seed=2, chunk=10, shard="0/2")
        half1 = run_fuzz(40, seed=2, chunk=10, shard="1/2")
        assert half0.executed_cells + half1.executed_cells == 4
        merged = set(half0.signatures) | set(half1.signatures)
        assert merged == set(whole.signatures)

    def test_report_payload_shape(self):
        report = run_fuzz(20, seed=5, chunk=20)
        d = report.to_dict()
        assert d["oracles"] == list(ORACLE_NAMES)
        assert set(d["patterns"]) == set(PATTERN_NAMES)
        assert d["coverage"]["behaviors"] == len(d["coverage"]["signatures"])
        json.dumps(d)  # plain data, serializable
        stats = report.stats()
        assert stats["wall_seconds"] >= 0
        assert "latency" not in d and "wall_seconds" not in d
        assert report.format().startswith("fuzz campaign:")

    def test_smoke_sweep_finds_zero_failures(self):
        """ISSUE acceptance: bounded smoke sweep, zero oracle failures,
        every generation pattern exercised."""
        report = run_fuzz(SMOKE_LOOPS, seed=0)
        assert report.ok, report.format()
        assert report.failed_cells == ()
        assert all(
            report.patterns[p]["cases"] > 0 for p in PATTERN_NAMES
        ), report.patterns
        assert len(report.signatures) > 50


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_fuzz_json_is_bit_identical_across_runs(self, tmp_path, capsys):
        from repro.cli import main

        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        for out in (out1, out2):
            rc = main(
                ["fuzz", "--loops", "30", "--seed", "3", "--json", str(out)]
            )
            assert rc == 0
        assert out1.read_bytes() == out2.read_bytes()
        payload = json.loads(out1.read_text())
        assert payload["failure_count"] == 0
        assert payload["loops"] == 30 and payload["seed"] == 3
        assert "fuzz campaign:" in capsys.readouterr().out
