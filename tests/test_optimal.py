"""Modulo-scheduling oracle."""

import pytest
from hypothesis import given, settings

from repro.baselines.optimal import (
    OPTIMAL_NODE_LIMIT,
    ModuloSchedule,
    best_modulo_rate,
    optimal_modulo_schedule,
    rate_lower_bound,
)
from repro.core.scheduler import schedule_loop
from repro.errors import SchedulingError
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm, ZeroComm
from repro.machine.model import Machine

from tests.conftest import chain_graph, connected_cyclic_graphs


class TestModuloSchedule:
    def test_ring_is_serial_and_certified(self):
        g = chain_graph(3, latency=2)
        m = Machine(2, UniformComm(2))
        s = optimal_modulo_schedule(g, m)
        assert s.period == 6
        assert s.certified_optimal(m)

    def test_self_loop(self):
        g = DependenceGraph()
        g.add_node("A", 3)
        g.add_edge("A", "A", distance=1)
        m = Machine(2, UniformComm(1))
        s = optimal_modulo_schedule(g, m)
        assert s.period == 3 and s.certified_optimal(m)

    def test_parallel_work_splits(self):
        # two independent self-recurrences of latency 2: P = 2 on 2 procs
        g = DependenceGraph()
        for n in ("A", "B"):
            g.add_node(n, 2)
            g.add_edge(n, n, distance=1)
        m = Machine(2, UniformComm(1))
        s = optimal_modulo_schedule(g, m)
        assert s.period == 2
        assert s.processors["A"] != s.processors["B"]

    def test_communication_charged_across_processors(self):
        # A -> B -> A(d1): splitting costs 2 x comm; serial P = 2 wins
        g = DependenceGraph()
        g.add_node("A", 1)
        g.add_node("B", 1)
        g.add_edge("A", "B")
        g.add_edge("B", "A", distance=1)
        m = Machine(2, UniformComm(3))
        s = optimal_modulo_schedule(g, m)
        assert s.period == 2
        assert s.processors["A"] == s.processors["B"]

    def test_fig7_single_initiation_rate(self, fig7_workload):
        m = Machine(2, UniformComm(2))
        s = optimal_modulo_schedule(fig7_workload.graph, m)
        # single-initiation modulo scheduling cannot express the d=2
        # pattern: its best P is 5, worse than the greedy pattern's 3
        assert s.period == 5

    def test_fig7_unrolled_matches_greedy(self, fig7_workload):
        m = Machine(2, UniformComm(2))
        rate = best_modulo_rate(fig7_workload.graph, m, max_unroll=2)
        greedy = schedule_loop(fig7_workload.graph, m)
        assert rate == pytest.approx(3.0)
        assert greedy.steady_cycles_per_iteration() == pytest.approx(rate)

    def test_node_limit(self, livermore_workload):
        with pytest.raises(SchedulingError, match="limit"):
            optimal_modulo_schedule(
                livermore_workload.graph, livermore_workload.machine
            )

    def test_distance_gate(self):
        g = DependenceGraph()
        g.add_node("A")
        g.add_edge("A", "A", distance=2)
        with pytest.raises(SchedulingError, match="normalize"):
            optimal_modulo_schedule(g, Machine(2))

    def test_verify_catches_violations(self):
        g = chain_graph(2)
        m = Machine(1, ZeroComm())
        bad = ModuloSchedule(g, 2, {"a0": 0, "a1": 0}, {"a0": 0, "a1": 0})
        with pytest.raises(SchedulingError, match="overlaps"):
            bad.verify(m)
        bad2 = ModuloSchedule(g, 2, {"a0": 1, "a1": 0}, {"a0": 0, "a1": 0})
        with pytest.raises(SchedulingError, match="violated"):
            bad2.verify(m)


class TestBracket:
    @given(connected_cyclic_graphs(max_nodes=4))
    @settings(max_examples=20)
    def test_modulo_brackets_lower_bound(self, g):
        m = Machine(3, UniformComm(1))
        s = optimal_modulo_schedule(g, m)
        assert s.period >= rate_lower_bound(g, m) - 1e-9
        assert s.period <= g.total_latency()

    @given(connected_cyclic_graphs(max_nodes=4))
    @settings(max_examples=15)
    def test_greedy_vs_modulo_reference(self, g):
        """The greedy pattern rate stays within the modulo bracket's
        sensible range: never better than the certified lower bound."""
        m = Machine(3, UniformComm(1))
        greedy = schedule_loop(g, m)
        assert (
            greedy.steady_cycles_per_iteration()
            >= rate_lower_bound(g, m) - 1e-9
        )
