"""Deterministic fault injection: plans, fabric, engine semantics,
recovery, and the chaos matrix driver.

The load-bearing property is differential: with an empty plan the whole
chaos stack must be bit-identical to the reliable engine and to the
closed-form fastpath.  Everything else — loss, duplication, stalls,
fail-stop, recovery — is pinned by deterministic replay: the same
(workload, plan) pair must produce the identical fault sequence and
outcome on every run.
"""

import json

import pytest

from repro.chaos import (
    CacheFaults,
    CommFabric,
    DelayJitter,
    FailStop,
    FaultEvent,
    FaultPlan,
    FaultyFabric,
    MessageDuplication,
    MessageLoss,
    ProcessorStall,
    SCENARIOS,
    run_chaos_matrix,
    run_resilient,
    scenario_plan,
)
from repro.core.scheduler import schedule_loop
from repro.errors import (
    DeadlockError,
    FaultInjectionError,
    GraphError,
    ProcessorFailureError,
    ScheduleValidationError,
    SimulationError,
    StallError,
)
from repro.report import format_chaos_table
from repro.sim.engine import simulate, validate_program
from repro.sim.fastpath import evaluate
from repro.workloads import fig7


ITER = 20


def msgs(trace):
    return sorted(
        trace.messages,
        key=lambda m: (m.sent, m.arrived, str(m.src), str(m.dst)),
    )


@pytest.fixture(scope="module")
def scheduled():
    w = fig7()
    return w, schedule_loop(w.graph, w.machine)


def run_plain(w, iterations=ITER, **kw):
    s = schedule_loop(w.graph, w.machine)
    return simulate(w.graph, s.program(iterations), w.machine.comm, **kw)


# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_uniform_is_deterministic_and_in_range(self):
        a = FaultPlan(7)
        b = FaultPlan(7)
        draws = [a.uniform("x", i) for i in range(50)]
        assert draws == [b.uniform("x", i) for i in range(50)]
        assert all(0.0 <= u < 1.0 for u in draws)
        # different seeds and keys decorrelate
        assert FaultPlan(8).uniform("x", 0) != a.uniform("x", 0)
        assert a.uniform("y", 0) != a.uniform("x", 0)

    def test_randint_bounds(self):
        p = FaultPlan(3)
        vals = {p.randint(2, 5, "k", i) for i in range(200)}
        assert vals == {2, 3, 4, 5}
        with pytest.raises(FaultInjectionError, match="range empty"):
            p.randint(5, 2, "k")

    def test_typed_views_and_null(self):
        p = FaultPlan(
            1,
            (
                DelayJitter(),
                MessageLoss(),
                MessageDuplication(),
                ProcessorStall(0, 5, 2),
                FailStop(1, 9),
                CacheFaults(),
            ),
        )
        assert len(p.jitters) == 1
        assert len(p.losses) == 1
        assert len(p.duplications) == 1
        assert len(p.stalls) == 1
        assert len(p.fail_stops) == 1
        assert len(p.cache_faults) == 1
        assert not p.is_null
        assert FaultPlan(1).is_null
        assert "FailStop" in p.describe()
        assert "no faults" in FaultPlan(1).describe()

    def test_crash_cycle_is_earliest(self):
        p = FaultPlan(0, (FailStop(2, 30), FailStop(2, 10), FailStop(3, 5)))
        assert p.crash_cycle(2) == 10
        assert p.crash_cycle(3) == 5
        assert p.crash_cycle(0) is None

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DelayJitter(prob=1.5),
            lambda: DelayJitter(max_extra=-1),
            lambda: MessageLoss(prob=-0.1),
            lambda: MessageLoss(max_retransmits=-1),
            lambda: MessageLoss(rto=0),
            lambda: MessageDuplication(copies=0),
            lambda: ProcessorStall(-1, 0, 1),
            lambda: ProcessorStall(0, -1, 1),
            lambda: ProcessorStall(0, 0, 0),
            lambda: FailStop(-1, 0),
            lambda: FailStop(0, -1),
            lambda: CacheFaults(prob=2.0),
            lambda: CacheFaults(kinds=()),
            lambda: CacheFaults(kinds=("truncate", "meteor")),
            lambda: FaultPlan(0, ("not a spec",)),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(FaultInjectionError):
            bad()

    def test_event_to_dict(self):
        ev = FaultEvent("msg_lost", 7, 2, "B->A attempt 1/4")
        assert ev.to_dict() == {
            "kind": "msg_lost",
            "time": 7,
            "proc": 2,
            "detail": "B->A attempt 1/4",
        }


# ----------------------------------------------------------------------
class TestFabric:
    def edge(self, w):
        return w.graph.edges[0]

    def test_null_fabric_passes_messages_through(self, scheduled):
        w, _ = scheduled
        f = CommFabric()
        mp = f.plan_message(self.edge(w), None, None, 0, 1, 3, 8)
        assert mp.accepted == 8
        assert mp.deliveries == (8,)
        assert mp.attempts == 1
        assert f.crash_cycle(0) is None
        assert f.stall_until(0, 5) is None
        assert f.events == []

    def test_empty_plan_matches_null_fabric(self, scheduled):
        w, _ = scheduled
        f = FaultyFabric(FaultPlan(5))
        mp = f.plan_message(self.edge(w), "x", "y", 0, 1, 3, 8)
        assert (mp.accepted, mp.deliveries, mp.attempts) == (8, (8,), 1)
        assert f.events == []

    def test_certain_loss_exhausts_retransmits(self, scheduled):
        w, _ = scheduled
        plan = FaultPlan(1, (MessageLoss(prob=1.0, max_retransmits=2, rto=4),))
        f = FaultyFabric(plan)
        mp = f.plan_message(self.edge(w), "x", "y", 0, 1, 10, 13)
        assert mp.accepted is None
        assert mp.deliveries == ()
        assert mp.attempts == 3
        kinds = [e.kind for e in f.events]
        assert kinds.count("msg_lost") == 2
        assert kinds.count("msg_lost_permanent") == 1
        assert kinds.count("msg_retransmit") == 2

    def test_retransmit_arrival_shifts_by_rto(self, scheduled):
        w, _ = scheduled
        # lose exactly the first attempt: find a seed where attempt 0 is
        # lost but attempt 1 survives under prob=0.5
        for seed in range(100):
            plan = FaultPlan(
                seed, (MessageLoss(prob=0.5, max_retransmits=3, rto=4),)
            )
            f = FaultyFabric(plan)
            mp = f.plan_message(self.edge(w), "x", "y", 0, 1, 10, 13)
            if mp.attempts == 2 and mp.accepted is not None:
                assert mp.accepted == 10 + 4 + 3  # sent + rto + cost
                return
        pytest.fail("no seed produced a single retransmit")

    def test_duplication_delivers_copies_later(self, scheduled):
        w, _ = scheduled
        plan = FaultPlan(2, (MessageDuplication(prob=1.0, copies=2),))
        f = FaultyFabric(plan)
        mp = f.plan_message(self.edge(w), "x", "y", 0, 1, 0, 5)
        assert mp.accepted == 5
        assert len(mp.deliveries) == 3
        assert mp.deliveries[0] == 5
        assert all(d > 5 for d in mp.deliveries[1:])
        assert [e.kind for e in f.events] == ["msg_dup"]

    def test_jitter_bounded(self, scheduled):
        w, _ = scheduled
        plan = FaultPlan(3, (DelayJitter(max_extra=3, prob=1.0),))
        f = FaultyFabric(plan)
        for i in range(30):
            mp = f.plan_message(self.edge(w), f"x{i}", "y", 0, 1, 0, 5)
            assert 5 <= mp.accepted <= 8

    def test_stall_windows_chain(self):
        plan = FaultPlan(
            0, (ProcessorStall(1, 10, 5), ProcessorStall(1, 14, 6))
        )
        f = FaultyFabric(plan)
        assert f.stall_until(1, 12) == 20  # 12 -> 15 -> chained to 20
        assert f.stall_until(1, 20) is None
        assert f.stall_until(0, 12) is None
        assert [e.kind for e in f.events] == ["stall", "stall"]
        # windows are only reported once
        f.stall_until(1, 11)
        assert len(f.events) == 2


# ----------------------------------------------------------------------
class TestValidateProgram:
    def test_duplicate_op_named(self, scheduled):
        w, s = scheduled
        prog = [list(r) for r in s.program(4)]
        dup = prog[0][0]
        prog[-1].append(dup)
        with pytest.raises(ScheduleValidationError, match="twice"):
            validate_program(w.graph, prog)
        with pytest.raises(SimulationError, match=str(dup.node)):
            validate_program(w.graph, prog)

    def test_negative_iteration_named(self, scheduled):
        w, s = scheduled
        prog = [list(r) for r in s.program(4)]
        bad = prog[0][0]._replace(iteration=-1)
        prog[0][0] = bad
        with pytest.raises(
            ScheduleValidationError, match="negative iteration"
        ):
            validate_program(w.graph, prog)

    def test_empty_program_rejected(self, scheduled):
        w, _ = scheduled
        with pytest.raises(ScheduleValidationError, match="processor"):
            validate_program(w.graph, [])

    def test_unknown_node_is_graph_error(self, scheduled):
        w, s = scheduled
        prog = [list(r) for r in s.program(4)]
        prog[0][0] = prog[0][0]._replace(node="ghost")
        with pytest.raises(GraphError):
            validate_program(w.graph, prog)

    def test_engine_and_fastpath_validate_identically(self, scheduled):
        w, s = scheduled
        prog = [list(r) for r in s.program(4)]
        prog[-1].append(prog[0][0])
        for run in (simulate, evaluate):
            with pytest.raises(ScheduleValidationError):
                run(w.graph, prog, w.machine.comm, use_runtime=True)


# ----------------------------------------------------------------------
class TestEngineDifferential:
    """Empty plan == null fabric == no fabric == fastpath, bit for bit."""

    def test_zero_fault_chaos_is_bit_identical(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        plain = simulate(w.graph, prog, w.machine.comm, use_runtime=True)
        chaos = simulate(
            w.graph,
            prog,
            w.machine.comm,
            use_runtime=True,
            fabric=FaultyFabric(FaultPlan(123)),
        )
        fast = evaluate(w.graph, prog, w.machine.comm, use_runtime=True)
        assert (
            plain.schedule.makespan()
            == chaos.schedule.makespan()
            == fast.makespan()
        )
        for op in fast.ops():
            assert plain.schedule.start(op) == chaos.schedule.start(op)
            assert chaos.schedule.start(op) == fast.start(op)
        assert msgs(plain) == msgs(chaos)
        assert chaos.faults == [] and chaos.fault_count() == 0

    def test_null_fabric_with_link_features(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        for kw in (
            {"link_capacity": 1},
            {"channel_fifo": True},
            {"link_capacity": 2, "channel_fifo": True},
        ):
            plain = simulate(
                w.graph, prog, w.machine.comm, use_runtime=True, **kw
            )
            chaos = simulate(
                w.graph,
                prog,
                w.machine.comm,
                use_runtime=True,
                fabric=CommFabric(),
                **kw,
            )
            assert plain.schedule.makespan() == chaos.schedule.makespan()
            assert msgs(plain) == msgs(chaos)


class TestEngineFaults:
    def test_fail_stop_halts_processor(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        base = evaluate(w.graph, prog, w.machine.comm, use_runtime=True)
        victim = base.used_processors()[0]
        crash = base.makespan() // 2
        fabric = FaultyFabric(FaultPlan(0, (FailStop(victim, crash),)))
        with pytest.raises(ProcessorFailureError) as exc:
            simulate(
                w.graph, prog, w.machine.comm, use_runtime=True, fabric=fabric
            )
        err = exc.value
        assert err.failed == {victim: crash}
        assert err.trace is not None
        assert err.executed  # partial progress before the crash
        # nothing executed on the victim finishes after the crash cycle
        for p in err.trace.schedule.ops_on(victim):
            assert p.end <= crash
        assert "fail-stopped" in str(err)
        assert any(e.kind == "fail_stop" for e in fabric.events)

    def test_certain_loss_stalls_with_partial_trace(self, scheduled):
        w, s = scheduled
        prog = s.program(8)
        fabric = FaultyFabric(
            FaultPlan(0, (MessageLoss(prob=1.0, max_retransmits=1, rto=2),))
        )
        with pytest.raises(StallError) as exc:
            simulate(
                w.graph, prog, w.machine.comm, use_runtime=True, fabric=fabric
            )
        err = exc.value
        assert err.lost_messages
        assert err.trace is not None
        assert "permanently lost" in str(err)

    def test_watchdog_trips_as_stall(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        with pytest.raises(StallError, match="watchdog horizon"):
            simulate(
                w.graph,
                prog,
                w.machine.comm,
                use_runtime=True,
                fabric=FaultyFabric(FaultPlan(0)),
                watchdog=1,
            )

    def test_duplicates_are_dropped_idempotently(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        base = evaluate(w.graph, prog, w.machine.comm, use_runtime=True)
        fabric = FaultyFabric(
            FaultPlan(4, (MessageDuplication(prob=1.0, copies=2),))
        )
        trace = simulate(
            w.graph, prog, w.machine.comm, use_runtime=True, fabric=fabric
        )
        # duplicates arrive later and are dropped: timing is unchanged
        assert trace.schedule.makespan() == base.makespan()
        kinds = {e.kind for e in trace.faults}
        assert "msg_dup" in kinds and "dup_dropped" in kinds

    def test_stall_window_delays_but_completes(self, scheduled):
        w, s = scheduled
        prog = s.program(ITER)
        base = evaluate(w.graph, prog, w.machine.comm, use_runtime=True)
        victim = base.used_processors()[0]
        fabric = FaultyFabric(
            FaultPlan(0, (ProcessorStall(victim, 5, 10),))
        )
        trace = simulate(
            w.graph, prog, w.machine.comm, use_runtime=True, fabric=fabric
        )
        assert trace.schedule.makespan() >= base.makespan()
        assert any(e.kind == "stall" for e in trace.faults)
        # nothing *starts* on the victim inside the window
        for p in trace.schedule.ops_on(victim):
            assert not (5 <= p.start < 15)

    def test_lossy_run_replays_identically(self, scheduled):
        w, s = scheduled
        prog = s.program(12)
        plan = FaultPlan(
            9,
            (
                DelayJitter(max_extra=2, prob=0.5),
                MessageLoss(prob=0.2, max_retransmits=4, rto=3),
                MessageDuplication(prob=0.2, copies=1),
            ),
        )

        def run():
            fabric = FaultyFabric(plan)
            try:
                t = simulate(
                    w.graph,
                    prog,
                    w.machine.comm,
                    use_runtime=True,
                    fabric=fabric,
                )
                return (t.schedule.makespan(), tuple(t.faults))
            except SimulationError as err:
                return (str(err), tuple(fabric.events))

        assert run() == run()


# ----------------------------------------------------------------------
class TestRecovery:
    def test_null_plan_is_ok_with_no_slowdown(self, scheduled):
        _, s = scheduled
        r = run_resilient(s, ITER, FaultPlan(1))
        assert r.outcome == "ok" and r.completed
        assert r.makespan == r.fault_free_makespan
        assert r.slowdown == 1.0
        assert r.fault_events == []

    def test_fail_stop_recovers_on_survivors(self, scheduled):
        w, s = scheduled
        base = evaluate(
            w.graph, s.program(ITER), w.machine.comm, use_runtime=True
        )
        victim = base.used_processors()[0]
        plan = FaultPlan(0, (FailStop(victim, base.makespan() // 2),))
        r = run_resilient(s, ITER, plan)
        assert r.outcome == "recovered" and r.completed
        assert victim in r.failed_processors
        assert victim not in r.survivors
        assert r.survivors
        assert r.degraded_mode in ("remap", "sequential_fallback")
        # degraded throughput is never worse than sequential re-execution
        assert r.degraded_cpi <= r.sequential_cpi
        assert r.makespan > r.fault_free_makespan
        assert r.restart_at >= base.makespan() // 2
        # boundary is a completed pattern boundary
        d = s.pattern.iter_shift if s.pattern is not None else 1
        assert 0 <= r.restart_boundary < ITER
        assert r.restart_boundary % d == 0

    def test_crash_at_cycle_zero_replays_everything(self, scheduled):
        w, s = scheduled
        base = evaluate(
            w.graph, s.program(ITER), w.machine.comm, use_runtime=True
        )
        victim = base.used_processors()[0]
        r = run_resilient(s, ITER, FaultPlan(0, (FailStop(victim, 0),)))
        assert r.outcome == "recovered"
        assert r.restart_boundary == 0
        assert r.degraded_cpi <= r.sequential_cpi

    def test_permanent_loss_reports_stalled(self, scheduled):
        _, s = scheduled
        plan = FaultPlan(0, (MessageLoss(prob=1.0, max_retransmits=0),))
        r = run_resilient(s, ITER, plan)
        assert r.outcome == "stalled" and not r.completed
        assert r.makespan is None and r.error
        assert any(
            e.kind == "msg_lost_permanent" for e in r.fault_events
        )

    def test_result_payload_is_json_ready(self, scheduled):
        w, s = scheduled
        base = evaluate(
            w.graph, s.program(ITER), w.machine.comm, use_runtime=True
        )
        victim = base.used_processors()[0]
        plan = FaultPlan(0, (FailStop(victim, base.makespan() // 2),))
        d = run_resilient(s, ITER, plan).to_dict()
        json.dumps(d)
        assert d["outcome"] == "recovered"
        assert d["fault_counts"].get("fail_stop", 0) >= 1

    def test_recovery_is_deterministic(self, scheduled):
        w, s = scheduled
        base = evaluate(
            w.graph, s.program(ITER), w.machine.comm, use_runtime=True
        )
        victim = base.used_processors()[0]
        plan = FaultPlan(7, (FailStop(victim, base.makespan() // 2),))
        assert (
            run_resilient(s, ITER, plan).to_dict()
            == run_resilient(s, ITER, plan).to_dict()
        )


# ----------------------------------------------------------------------
class TestDriver:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            scenario_plan("gremlins", 1, makespan=100, used_processors=[0])

    def test_victim_rotates_with_seed(self):
        p0 = scenario_plan(
            "failstop", 0, makespan=100, used_processors=[3, 5]
        )
        p1 = scenario_plan(
            "failstop", 1, makespan=100, used_processors=[3, 5]
        )
        assert p0.fail_stops[0].proc == 3
        assert p1.fail_stops[0].proc == 5

    @pytest.fixture(scope="class")
    def matrix(self):
        return run_chaos_matrix(fig7(), [1, 2], iterations=16)

    def test_matrix_shape(self, matrix):
        assert len(matrix["rows"]) == len(SCENARIOS) * 2
        assert set(matrix["summary"]) == set(SCENARIOS)
        for s in matrix["summary"].values():
            assert 0.0 <= s["survival"] <= 1.0
        json.dumps(matrix)

    def test_none_scenario_is_faultless(self, matrix):
        rows = [r for r in matrix["rows"] if r["scenario"] == "none"]
        for r in rows:
            assert r["outcome"] == "ok"
            assert r["slowdown"] == 1.0
            assert r["fault_counts"] == {}

    def test_failstop_rows_complete_degraded(self, matrix):
        rows = [r for r in matrix["rows"] if r["scenario"] == "failstop"]
        for r in rows:
            assert r["outcome"] == "recovered"
            assert r["degraded_cpi"] <= r["sequential_cpi"]

    def test_matrix_is_deterministic(self, matrix):
        again = run_chaos_matrix(fig7(), [1, 2], iterations=16)
        assert again == matrix

    def test_table_renders(self, matrix):
        text = format_chaos_table(matrix)
        for scenario in SCENARIOS:
            assert scenario in text
        assert "survival" in text
        if any(r["outcome"] == "recovered" for r in matrix["rows"]):
            assert "degraded-mode rate" in text
