"""Workload library: structure and generator protocol."""

import pytest

from repro.core.classify import classify
from repro.errors import ReproError
from repro.graph.algorithms import connected_components
from repro.workloads import (
    cytron86,
    elliptic_filter,
    fig1,
    fig3,
    fig7,
    livermore18,
    paper_seeds,
    random_cyclic_loop,
    random_loop,
)


class TestExamples:
    def test_fig7_structure(self):
        w = fig7()
        assert w.loop is not None
        assert w.graph.node_names() == ["A", "B", "C", "D", "E"]
        assert w.graph.total_latency() == 5
        assert w.machine.k == 2
        assert w.paper["sp_ours"] == 40.0

    def test_fig1_is_connected(self):
        assert len(connected_components(fig1().graph)) == 1

    def test_fig3_all_unit_latency(self):
        w = fig3()
        assert all(n.latency == 1 for n in w.graph.nodes.values())
        assert w.machine.k == 1

    def test_cytron_reconstruction_constraints(self):
        w = cytron86()
        assert len(w.graph) == 17
        assert w.graph.total_latency() == 22
        c = classify(w.graph)
        assert c.cyclic == tuple("012345")
        assert not c.flow_out
        lats = {w.graph.latency(n) for n in w.graph.node_names()}
        assert lats == {1, 2}  # "the latency of the operations is not unique"

    def test_livermore_reconstruction_constraints(self):
        w = livermore18()
        assert len(w.graph) == 31
        c = classify(w.graph)
        assert len(c.flow_in) == 8  # paper: 8 non-Cyclic nodes, all Flow-in

    def test_elliptic_reconstruction_constraints(self):
        w = elliptic_filter()
        g = w.graph
        assert len(g) == 34
        lats = [g.latency(n) for n in g.node_names()]
        assert lats.count(1) == 26 and lats.count(2) == 8
        c = classify(g)
        assert c.flow_out == ("e34",)  # paper: only node 34 non-Cyclic
        assert len(c.cyclic) == 33

    def test_workload_notes_flag_reconstructions(self):
        for w in (cytron86(), livermore18(), elliptic_filter()):
            assert "econstruction" in w.notes


class TestRandomLoops:
    def test_paper_seeds(self):
        assert paper_seeds() == list(range(1, 26))

    def test_protocol_counts(self):
        g = random_loop(7)
        assert len(g) == 40
        sds = [e for e in g.edges if e.distance == 0]
        lcds = [e for e in g.edges if e.distance == 1]
        assert len(sds) == 20 and len(lcds) == 20

    def test_latencies_in_range(self):
        g = random_loop(3)
        assert all(1 <= n.latency <= 3 for n in g.nodes.values())

    def test_deterministic_per_seed(self):
        a, b = random_loop(5), random_loop(5)
        assert a.node_names() == b.node_names()
        assert [
            (e.src, e.dst, e.distance) for e in a.edges
        ] == [(e.src, e.dst, e.distance) for e in b.edges]

    def test_seeds_differ(self):
        a, b = random_loop(1), random_loop(2)
        assert [(e.src, e.dst) for e in a.edges] != [
            (e.src, e.dst) for e in b.edges
        ]

    def test_sd_edges_forward_only(self):
        g = random_loop(9)
        for e in g.edges:
            if e.distance == 0:
                assert g.node_index(e.src) < g.node_index(e.dst)

    def test_body_is_executable(self):
        for seed in (1, 5, 9):
            random_loop(seed).validate()

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            random_loop(1, nodes=1)  # default sds cannot fit
        with pytest.raises(ReproError):
            random_loop(1, nodes=3, sds=50)

    def test_single_node_with_self_dep(self):
        g = random_loop(1, nodes=1, sds=0, lcds=1)
        assert g.node_names() == ["n0"]
        assert [(e.src, e.dst, e.distance) for e in g.edges] == [
            ("n0", "n0", 1)
        ]
        g.validate()

    def test_single_free_node(self):
        g = random_loop(1, nodes=1, sds=0, lcds=0)
        assert g.node_names() == ["n0"] and not g.edges
        g.validate()

    def test_degenerate_budgets_rejected_up_front(self):
        with pytest.raises(ReproError):
            random_loop(1, nodes=0)
        with pytest.raises(ReproError):
            random_loop(1, nodes=1, sds=1, lcds=0)
        with pytest.raises(ReproError):  # only (n0, n0) exists
            random_loop(1, nodes=1, sds=0, lcds=2)

    def test_zero_cost_edges_stamped_consistently(self):
        g = random_loop(2, nodes=5, sds=4, lcds=3, edge_comm=0)
        assert len(g.edges) == 7
        assert all(e.comm == 0 for e in g.edges)

    def test_edge_comm_default_and_validation(self):
        assert all(
            e.comm is None
            for e in random_loop(2, nodes=5, sds=4, lcds=3).edges
        )
        with pytest.raises(ReproError):
            random_loop(1, edge_comm=-1)

    def test_cyclic_subject_nonempty_and_cyclic(self):
        for seed in paper_seeds():
            w = random_cyclic_loop(seed)
            c = classify(w.graph)
            assert len(c.cyclic) == len(w.graph) >= 1
            assert not c.flow_in and not c.flow_out

    def test_cyclic_subject_machine_parameters(self):
        w = random_cyclic_loop(4, k=3, mm=5)
        assert w.machine.k == 3
        edge = w.graph.edges[0]
        from repro._types import Op

        assert w.machine.comm.runtime_cost(edge, Op(edge.src, 0)) == 7
