"""Folded-program construction invariants (Section 3 heuristic)."""

import pytest
from hypothesis import given, settings

from repro._types import Op
from repro.core.classify import classify
from repro.core.scheduler import schedule_loop
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm
from repro.machine.model import Machine

from tests.conftest import loop_graphs


def folded(workload, iterations=12):
    s = schedule_loop(workload.graph, workload.machine, folding="always")
    assert s.plan is not None and s.plan.fold_into is not None
    return s, s.program(iterations)


class TestFoldedProgram:
    def test_noncyclic_ops_land_on_fold_processor(self, livermore_workload):
        w = livermore_workload
        s, prog = folded(w)
        c = classify(w.graph)
        used = s.cyclic_processors
        compact = {orig: i for i, orig in enumerate(used)}
        fold = compact[s.plan.fold_into]
        noncyclic = set(c.flow_in) | set(c.flow_out)
        for j, row in enumerate(prog):
            for op in row:
                if op.node in noncyclic:
                    assert j == fold

    def test_per_processor_order_respects_dependences(
        self, livermore_workload
    ):
        w = livermore_workload
        _, prog = folded(w)
        for row in prog:
            pos = {op: i for i, op in enumerate(row)}
            for op in row:
                for pred, _e in w.graph.instance_predecessors(op):
                    if pred in pos:
                        assert pos[pred] < pos[op], (pred, op)

    def test_cyclic_subsequence_preserved(self, livermore_workload):
        """Folding inserts non-cyclic ops but never reorders the
        pattern's own per-processor sequences."""
        w = livermore_workload
        s, prog = folded(w, iterations=10)
        plain = schedule_loop(w.graph, w.machine, folding="never")
        plain_prog = plain.program(10)
        c = classify(w.graph)
        cyclic = set(c.cyclic)
        for j in range(len(s.cyclic_processors)):
            folded_cyclic = [op for op in prog[j] if op.node in cyclic]
            assert folded_cyclic == [
                op for op in plain_prog[j] if op.node in cyclic
            ]

    def test_all_instances_present_once(self, livermore_workload):
        w = livermore_workload
        _, prog = folded(w, iterations=9)
        ops = [op for row in prog for op in row]
        assert sorted(ops) == sorted(w.graph.instances(9))

    def test_flow_out_only_graph_folds(self):
        g = DependenceGraph("fo")
        g.add_node("x", 1)
        g.add_node("y", 2)
        g.add_node("out", 1)
        g.add_edge("x", "y")
        g.add_edge("y", "x", distance=1)
        g.add_edge("y", "out")
        m = Machine(2, UniformComm(1))
        s = schedule_loop(g, m, folding="always")
        n = 8
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)

    @given(loop_graphs(max_nodes=6, ensure_recurrence=True))
    @settings(max_examples=25)
    def test_forced_folding_always_valid(self, g):
        from repro.core.scheduler import CombinedLoop

        m = Machine(3, UniformComm(2))
        s = schedule_loop(g, m, folding="always")
        n = 6
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)
        if not isinstance(s, CombinedLoop) and s.plan is not None:
            assert s.plan.extra_processors == 0
