"""Per-edge communication-cost overrides, end to end.

The paper allows "each communication edge can have a different cost,
but k is the upper bound" (§2.3).  Edge costs are carried on the
dependence edge (``Edge.comm``) and must be honoured consistently by
the scheduler, the validator, both simulators, and the configuration
window height.
"""

import pytest

from repro._types import Op
from repro.core.cyclic import schedule_cyclic
from repro.core.scheduler import schedule_loop
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import FluctuatingComm, UniformComm
from repro.machine.model import Machine
from repro.sim.engine import simulate
from repro.sim.fastpath import evaluate


def mixed_cost_graph():
    """Two-node recurrence: cheap edge one way, expensive the other."""
    g = DependenceGraph("mixed")
    g.add_node("A", 1)
    g.add_node("B", 1)
    g.add_edge("A", "B", comm=1)
    g.add_edge("B", "A", distance=1, comm=5)
    return g


class TestPerEdgeCosts:
    def test_models_honour_override(self):
        g = mixed_cost_graph()
        cheap, dear = g.edges
        u = UniformComm(3)
        assert u.compile_cost(cheap) == 1
        assert u.compile_cost(dear) == 5
        f = FluctuatingComm(k=3, mm=3, mode="worst")
        assert f.runtime_cost(dear, Op("B", 0)) == 7  # 5 + mm - 1

    def test_fastpath_charges_override(self):
        g = mixed_cost_graph()
        s = evaluate(
            g, [[Op("A", 0)], [Op("B", 0)]], UniformComm(3)
        )
        assert s.start(Op("B", 0)) == 2  # 1 latency + override 1

    def test_engine_matches(self):
        g = mixed_cost_graph()
        order = [[Op("A", 0), Op("A", 1)], [Op("B", 0), Op("B", 1)]]
        fast = evaluate(g, order, UniformComm(3))
        slow = simulate(g, order, UniformComm(3), use_runtime=False)
        for op in fast.ops():
            assert fast.start(op) == slow.schedule.start(op)
        # A1 needs B0 across the expensive edge: 2 + 1 + 5 = 8
        assert fast.start(Op("A", 1)) == 8

    def test_scheduler_avoids_expensive_split(self):
        """With a 5-cycle back edge, splitting the recurrence loses;
        the pattern keeps it serial (rate 2)."""
        g = mixed_cost_graph()
        m = Machine(2, UniformComm(3))
        r = schedule_cyclic(g, m)
        assert r.pattern.cycles_per_iteration() == pytest.approx(2.0)
        assert len(r.pattern.used_processors()) == 1

    def test_validator_uses_override(self):
        from repro.core.schedule import Schedule
        from repro.errors import ValidationError

        g = mixed_cost_graph()
        s = Schedule(2)
        s.add(Op("B", 0), 0, 0, 1)
        s.add(Op("A", 1), 1, 3, 1)  # needs 1 + 5 = 6 across procs
        with pytest.raises(ValidationError):
            s.validate(g, UniformComm(3))
        ok = Schedule(2)
        ok.add(Op("B", 0), 0, 0, 1)
        ok.add(Op("A", 1), 1, 6, 1)
        ok.validate(g, UniformComm(3))

    def test_window_height_tracks_largest_edge_cost(self):
        """k is 'the upper bound of this cost': detection must use the
        per-edge maximum even when the machine default is lower."""
        g = mixed_cost_graph()
        m = Machine(2, UniformComm(1))  # default below the 5-cycle edge
        r = schedule_cyclic(g, m)
        n = 3 * r.pattern.iter_shift + 2
        sched = r.pattern.expand(n)
        sched.validate(g, m.comm, iterations=n)

    def test_full_loop_schedules_and_validates(self):
        g = mixed_cost_graph()
        g.add_node("OUT", 1)
        g.add_edge("B", "OUT", comm=2)
        m = Machine(3, UniformComm(3))
        s = schedule_loop(g, m)
        n = 12
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)
