"""Scheduling loops with dependence distances > 1 (auto-unwinding)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Op
from repro.codegen.interp import verify_graph_dataflow
from repro.codegen.partition import ParallelProgram
from repro.core.normalized import schedule_any_loop
from repro.graph.ddg import DependenceGraph
from repro.machine.comm import UniformComm
from repro.machine.model import Machine


def distance_graph(d: int, lat: int = 1) -> DependenceGraph:
    g = DependenceGraph(f"dist{d}")
    g.add_node("A", lat)
    g.add_node("B", lat)
    g.add_edge("A", "B")
    g.add_edge("B", "A", distance=d)
    return g


class TestBasics:
    def test_factor_matches_max_distance(self):
        s = schedule_any_loop(distance_graph(3), Machine(4, UniformComm(1)))
        assert s.factor == 3
        assert s.total_processors >= 1

    def test_distance_one_passthrough(self):
        s = schedule_any_loop(distance_graph(1), Machine(2, UniformComm(1)))
        assert s.factor == 1
        assert "already normalized" in s.describe()

    def test_rate_in_original_iterations(self):
        # recurrence A->B->A(d3): 2 latency / 3 distance = 2/3 per iter;
        # unwound x3 one kernel covers 3 original iterations
        s = schedule_any_loop(distance_graph(3), Machine(4, UniformComm(0)))
        assert s.steady_cycles_per_iteration() <= 1.0

    def test_program_covers_exactly_n_original_iterations(self):
        s = schedule_any_loop(distance_graph(3), Machine(3, UniformComm(1)))
        for n in (1, 4, 7, 9):
            ops = [op for row in s.program(n) for op in row]
            assert sorted(ops) == sorted(
                Op(v, i) for v in ("A", "B") for i in range(n)
            )

    def test_negative_iterations_rejected(self):
        s = schedule_any_loop(distance_graph(2), Machine(2))
        with pytest.raises(Exception):
            s.program(-2)


class TestTimingAndDataflow:
    def test_compile_schedule_validates_on_original_graph(self):
        g = distance_graph(4, lat=2)
        m = Machine(3, UniformComm(2))
        s = schedule_any_loop(g, m)
        n = 13
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)

    def test_dataflow_verified_in_original_space(self):
        g = distance_graph(3)
        m = Machine(3, UniformComm(1))
        s = schedule_any_loop(g, m)
        n = 9
        prog = ParallelProgram(
            g, tuple(tuple(r) for r in s.program(n)), n
        )
        verify_graph_dataflow(g, prog)

    @given(st.integers(2, 5), st.integers(1, 3))
    @settings(max_examples=20)
    def test_any_distance_any_latency(self, d, lat):
        g = distance_graph(d, lat)
        m = Machine(3, UniformComm(1))
        s = schedule_any_loop(g, m)
        n = 2 * d + 3
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)
        # recurrence bound per original iteration: 2*lat/d
        assert s.steady_cycles_per_iteration() >= 2 * lat / d - 1e-9


class TestMixedDistances:
    def test_mixed_graph(self):
        g = DependenceGraph("mixed")
        for n, lat in (("X", 1), ("Y", 2), ("Z", 1)):
            g.add_node(n, lat)
        g.add_edge("X", "Y")
        g.add_edge("Y", "Z")
        g.add_edge("Z", "X", distance=2)
        g.add_edge("Y", "Y", distance=3)
        m = Machine(4, UniformComm(1))
        s = schedule_any_loop(g, m)
        assert s.factor == 3
        n = 10
        sched = s.compile_schedule(n)
        sched.validate(g, m.comm, iterations=n)
        prog = ParallelProgram(
            g, tuple(tuple(r) for r in s.program(n)), n
        )
        verify_graph_dataflow(g, prog)
