"""Unit tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    atomic_write_text,
    current_tracer,
    percentile,
    replant,
    sim_segment_events,
    summarize,
    text_profile,
    to_chrome_trace,
    traced,
    use_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.engine import Segment


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_time(self):
        t = Tracer()
        with t.span("outer", "a") as outer:
            with t.span("inner", "b") as inner:
                time.sleep(0.001)
        assert inner.parent is outer
        assert outer.parent is None
        assert inner.ts >= outer.ts
        assert inner.end is not None and outer.end is not None
        assert inner.end <= outer.end
        assert inner.duration > 0

    def test_sibling_spans_share_parent(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("a") as a:
                pass
            with t.span("b") as b:
                pass
        assert a.parent is outer and b.parent is outer
        # finished() reports in start order
        assert [s.name for s in t.finished()] == ["outer", "a", "b"]

    def test_exception_recorded_and_span_closed(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom") as s:
                raise ValueError("nope")
        assert s.end is not None
        assert s.args["error"] == "ValueError: nope"

    def test_span_set_attributes(self):
        t = Tracer()
        with t.span("s") as s:
            s.set("cache_hit", True)
        assert s.args == {"cache_hit": True}

    def test_traced_decorator_uses_current_tracer(self):
        t = Tracer()

        @traced("myfn", cat="fn")
        def add(a, b):
            return a + b

        with use_tracer(t):
            assert add(2, 3) == 5
        (s,) = t.finished()
        assert (s.name, s.cat) == ("myfn", "fn")

    def test_use_tracer_restores_previous(self):
        before = current_tracer()
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
        assert current_tracer() is before

    def test_default_tracer_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled


class TestNullTracer:
    def test_null_span_is_shared_and_allocation_free(self):
        s1 = NULL_TRACER.span("a", "x")
        s2 = NULL_TRACER.span("b", "y")
        assert s1 is s2  # one shared object, no per-call allocation
        before = Span.allocated
        for _ in range(1000):
            with NULL_TRACER.span("hot", "loop") as s:
                s.set("ignored", 1)
        assert Span.allocated == before

    def test_null_payload_is_none(self):
        assert NULL_TRACER.to_payload() is None


class TestReplant:
    def _bundle(self, epoch_shift=0.0):
        child = Tracer()
        child.epoch_unix += epoch_shift  # simulate another process clock
        with child.span("cell-1", "cell"):
            with child.span("Pass", "pass"):
                pass
        return child.to_payload()

    def test_replant_preserves_structure_and_args(self):
        parent = Tracer()
        with parent.span("campaign", "campaign") as root:
            roots = replant(
                parent, root, self._bundle(), root_args={"attempt": 2}
            )
        (cell,) = roots
        assert cell.parent is root
        assert cell.args["attempt"] == 2
        spans = {s.name: s for s in parent.finished()}
        assert spans["Pass"].parent is spans["cell-1"]

    def test_replant_clamps_to_parent_start(self):
        parent = Tracer()
        with parent.span("campaign") as root:
            # bundle from a clock far in the "past": without the clamp
            # its spans would start before the campaign span.
            roots = replant(parent, root, self._bundle(epoch_shift=-60.0))
        assert roots[0].ts >= root.ts

    def test_replant_empty_bundle_is_noop(self):
        parent = Tracer()
        with parent.span("campaign") as root:
            assert replant(parent, root, None) == []
            assert replant(parent, root, {"epoch": 0.0, "spans": []}) == []
        assert len(parent.finished()) == 1


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_percentile_nearest_rank(self):
        data = list(range(1, 101))  # 1..100
        assert percentile(data, 50) == 50
        assert percentile(data, 95) == 95
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert (s["min"], s["max"]) == (1.0, 4.0)
        assert summarize([]) == {"count": 0}

    def test_counter_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in [1.0, 2.0, 3.0, 10.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == 4.0
        assert s["max"] == 10.0

    def test_histogram_decimation_keeps_true_count_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("big")
        h.keep = 64  # small reservoir to force decimation
        n = 1000
        for i in range(n):
            h.observe(float(i))
        s = h.summary()
        assert s["count"] == n
        assert s["mean"] == pytest.approx(sum(range(n)) / n)
        assert len(h.samples()) <= 64
        # retained samples are a true subset; percentiles stay in range
        assert set(h.samples()) <= set(float(i) for i in range(n))
        assert 0 <= s["p50"] <= n - 1

    def test_registry_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
        reg.clear()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestChromeExport:
    def _tracer(self):
        t = Tracer()
        with t.span("outer", "a") as s:
            s.set("k", 1)
            with t.span("inner", "b"):
                pass
        return t

    def test_export_is_valid_and_microseconds(self):
        t = self._tracer()
        obj = to_chrome_trace(t.finished())
        assert validate_chrome_trace(obj) == []
        events = {e["name"]: e for e in obj["traceEvents"]}
        outer, inner = events["outer"], events["inner"]
        assert outer["ph"] == "X"
        assert outer["args"] == {"k": 1}
        # microsecond timestamps, sorted by ts
        assert outer["ts"] <= inner["ts"]
        assert outer["dur"] >= inner["dur"]
        assert obj["displayTimeUnit"] == "ms"

    def test_unfinished_spans_are_skipped(self):
        t = Tracer()
        cm = t.span("open", "x")
        cm.__enter__()  # never exited
        obj = to_chrome_trace(t.spans)
        assert obj["traceEvents"] == []

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        t = self._tracer()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(str(path), t.finished())
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_sim_segment_events(self):
        segs = [
            Segment(0, "busy", 0, 3, "A[0]"),
            Segment(1, "recv", 0, 2, "B[0]"),
            Segment(1, "wait", 2, 4),
        ]
        events = sim_segment_events(segs, us_per_cycle=2.0)
        obj = to_chrome_trace([], extra_events=events)
        assert validate_chrome_trace(obj) == []
        assert events[0]["name"] == "A[0]"
        assert events[0]["dur"] == 6.0  # 3 cycles * 2 us
        assert events[2]["name"] == "wait"
        assert {e["cat"] for e in events} == {
            "sim.busy",
            "sim.recv",
            "sim.wait",
        }

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        bad = {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("name" in p for p in validate_chrome_trace(bad))
        bad_dur = {
            "traceEvents": [
                {"name": "e", "ph": "X", "ts": 0, "pid": 1, "tid": 1,
                 "dur": -1}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(bad_dur))


class TestTextProfile:
    def test_profile_aggregates_and_self_time(self):
        t = Tracer()
        with t.span("outer", "a"):
            for _ in range(3):
                with t.span("inner", "b"):
                    time.sleep(0.001)
        out = text_profile(t.finished())
        assert "a:outer" in out and "b:inner" in out
        inner_line = next(ln for ln in out.splitlines() if "b:inner" in ln)
        assert " 3 " in inner_line  # count column

    def test_profile_empty(self):
        assert text_profile([]) == "(no spans recorded)"

    def test_profile_limit(self):
        t = Tracer()
        for i in range(5):
            with t.span(f"s{i}", "c"):
                pass
        out = text_profile(t.finished(), limit=2)
        assert "3 more span groups" in out


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_write_and_overwrite(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "one")
        assert path.read_text() == "one"
        atomic_write_text(str(path), "two")
        assert path.read_text() == "two"
        # no temp files left behind on the happy path
        assert os.listdir(tmp_path) == ["out.json"]

    def test_kill_mid_write_never_truncates(self, tmp_path):
        """SIGKILL a process that is writing the same file in a loop:
        the destination must always hold one *complete* payload."""
        path = tmp_path / "artifact.json"
        atomic_write_text(str(path), "BEGIN " + "x" * 100 + " END")
        script = (
            "import sys\n"
            "from repro.obs import atomic_write_text\n"
            "path = sys.argv[1]\n"
            "payload = 'BEGIN ' + 'y' * 2_000_000 + ' END'\n"
            "print('ready', flush=True)\n"
            "while True:\n"
            "    atomic_write_text(path, payload)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == "ready"
            time.sleep(0.05)  # land the kill mid-loop
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        content = path.read_text()
        assert content.startswith("BEGIN ")
        assert content.endswith(" END")

    def test_failed_write_preserves_old_content(self, tmp_path):
        path = tmp_path / "keep.json"
        atomic_write_text(str(path), "original")
        with pytest.raises(TypeError):
            atomic_write_text(str(path), 12345)  # type: ignore[arg-type]
        assert path.read_text() == "original"
        # the aborted temp file was cleaned up
        assert os.listdir(tmp_path) == ["keep.json"]
