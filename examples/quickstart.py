#!/usr/bin/env python
"""Quickstart: parallelize the paper's Fig. 7 loop end to end.

Pipeline: parse the loop -> build its dependence graph -> classify ->
schedule (Cyclic-sched finds the repeating pattern) -> expand into a
per-processor program -> simulate -> compare with DOACROSS, exactly as
the paper's worked example does.

Run:  python examples/quickstart.py
"""

from repro import (
    Machine,
    UniformComm,
    build_graph,
    classify,
    parse_loop,
    percentage_parallelism,
    schedule_loop,
    sequential_time,
)
from repro.baselines import schedule_doacross
from repro.report import gantt
from repro.sim import evaluate

SOURCE = """
FOR I = 1 TO N
  A: A[I] = A[I-1] + E[I-1]
  B: B[I] = A[I]
  C: C[I] = B[I]
  D: D[I] = D[I-1] + C[I-1]
  E: E[I] = D[I]
ENDFOR
"""


def main() -> None:
    loop = parse_loop(SOURCE, name="fig7")
    graph = build_graph(loop)

    print("Dependences:")
    for e in graph.edges:
        carried = f"loop-carried (distance {e.distance})" if e.distance else "intra-iteration"
        print(f"  {e.src} -> {e.dst}   {carried}")

    c = classify(graph)
    print(f"\nClassification: flow-in={list(c.flow_in)} "
          f"cyclic={list(c.cyclic)} flow-out={list(c.flow_out)}")

    machine = Machine(processors=2, comm=UniformComm(2))
    scheduled = schedule_loop(graph, machine)
    print(f"\n{scheduled.describe()}\n")

    n = 100
    program = scheduled.program(n)
    parallel = evaluate(graph, program, machine.comm).makespan()
    sequential = sequential_time(graph, n)
    print(f"{n} iterations: sequential {sequential} cycles, "
          f"parallel {parallel} cycles")
    print(f"percentage parallelism: "
          f"{percentage_parallelism(sequential, parallel):.1f}% "
          f"(paper: 40%)")

    doacross = schedule_doacross(graph, machine.with_processors(4))
    doa = min(
        evaluate(graph, doacross.program(n), machine.comm).makespan(),
        sequential,
    )
    print(f"DOACROSS (delay {doacross.delay}): "
          f"{percentage_parallelism(sequential, doa):.1f}% (paper: 0%)")

    print("\nFirst cycles of the schedule (compare paper Fig. 7(d)):")
    print(gantt(scheduled.compile_schedule(6), cycles=14))

    # The same compilation as an explicit pass pipeline, with per-stage
    # timing and artifact caching (the second run is pure cache hits).
    from repro import CompilationContext, build_pipeline

    pipeline = build_pipeline(source=True, iterations=n)
    ctx = CompilationContext.from_source(SOURCE, machine, name="fig7")
    pipeline.run(ctx)
    assert ctx.scheduled.program(n) == program
    print("\nPipeline stages (cold):")
    print(ctx.report.format())
    ctx2 = CompilationContext.from_source(SOURCE, machine, name="fig7")
    pipeline.run(ctx2)
    print(f"warm recompile: {len(ctx2.report.executed)} of "
          f"{len(ctx2.report.passes)} passes executed "
          f"({ctx2.report.cache_hits} cache hits)")


if __name__ == "__main__":
    main()
