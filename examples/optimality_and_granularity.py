#!/usr/bin/env python
"""Advanced studies: optimality brackets and granularity tuning.

Two questions a compiler engineer asks after reading the paper:

1. *How good is the greedy pattern scheduler, really?*  For small
   loops we bracket it between a certified lower bound and an exact
   modulo-scheduling reference — and see that the paper's pattern
   class (kernels spanning several iterations) expresses schedules
   classic single-initiation modulo scheduling cannot.

2. *What if nodes are much cheaper than messages?*  The paper's
   footnote 3 says to coarsen granularity; we sweep the communication
   cost on the Fig. 7 loop and show chain clustering taking over as
   messages get expensive.

Run:  python examples/optimality_and_granularity.py
"""

from repro import Machine, UniformComm, schedule_loop
from repro.baselines.optimal import (
    best_modulo_rate,
    optimal_modulo_schedule,
    rate_lower_bound,
)
from repro.graph.cluster import coarsen_chains
from repro.metrics import percentage_parallelism, sequential_time
from repro.sim import evaluate
from repro.workloads import fig7


def optimality_study() -> None:
    w = fig7()
    m = Machine(2, UniformComm(2))
    greedy = schedule_loop(w.graph, m)
    mod1 = optimal_modulo_schedule(w.graph, m)
    mod2 = best_modulo_rate(w.graph, m, max_unroll=2)
    print("Fig. 7 loop, 2 processors, k = 2 (cycles/iteration):")
    print(f"  certified lower bound      : {rate_lower_bound(w.graph, m):.2f}")
    print(f"  modulo schedule (1 iter)   : {mod1.period:.2f}"
          f"   <- cannot express multi-iteration kernels")
    print(f"  modulo schedule (<=2 iters): {mod2:.2f}")
    print(f"  greedy pattern (the paper) : "
          f"{greedy.steady_cycles_per_iteration():.2f}"
          f"   <- matches the unrolled modulo reference")


def granularity_study() -> None:
    from repro.workloads import livermore18

    w = livermore18()
    g = w.graph
    cl = coarsen_chains(g)
    n = 60
    seq = sequential_time(g, n)
    print(f"\nGranularity sweep on Livermore 18 "
          f"({len(g)} nodes -> {len(cl.coarse)} clusters):")
    print(f"  {'k':>4s} {'fine-grain Sp':>14s} {'clustered Sp':>13s}")
    for k in (1, 2, 6, 12):
        m = w.machine.with_comm(UniformComm(k))
        fine = schedule_loop(g, m)
        fine_sp = percentage_parallelism(
            seq, min(evaluate(g, fine.program(n), m.comm).makespan(), seq)
        )
        coarse = schedule_loop(cl.coarse, m)
        prog = cl.expand_program(coarse.program(n))
        coarse_sp = percentage_parallelism(
            seq, min(evaluate(g, prog, m.comm).makespan(), seq)
        )
        print(f"  {k:4d} {fine_sp:13.1f}% {coarse_sp:12.1f}%")
    print("(while messages are cheap the two coincide; once messages "
          "dwarf the nodes, the clustered schedule — one value shipped "
          "per chain instead of per op — holds up better, the "
          "adjustment footnote 3 of the paper calls for)")


if __name__ == "__main__":
    optimality_study()
    granularity_study()
