#!/usr/bin/env python
"""Full compiler pipeline on a real kernel: the 18th Livermore Loop.

Demonstrates everything a downstream user would do with a non-trivial
loop: classification, pattern scheduling with communication cost,
Flow-in handling (extra processors vs folding), partitioned-code
generation, and *verified* parallel execution — the generated program
is executed with message-passing semantics and compared value-for-value
against the sequential interpreter.

Run:  python examples/livermore18_pipeline.py
"""

from repro import classify, percentage_parallelism, schedule_loop, sequential_time
from repro.codegen import partition, verify_against_sequential
from repro.sim import evaluate, simulate
from repro.workloads import livermore18


def main() -> None:
    w = livermore18()
    graph, machine = w.graph, w.machine

    c = classify(graph)
    print(f"Livermore 18 ({len(graph)} statements, "
          f"{graph.total_latency()} cycles/iteration sequential):")
    print(f"  flow-in {len(c.flow_in)} nodes: {', '.join(c.flow_in)}")
    print(f"  cyclic  {len(c.cyclic)} nodes (the recurrences through "
          f"ZU/ZV/ZR/ZZ)")

    for folding in ("never", "always"):
        scheduled = schedule_loop(graph, machine, folding=folding)
        n = 100
        par = evaluate(graph, scheduled.program(n), machine.comm).makespan()
        sp = percentage_parallelism(sequential_time(graph, n), par)
        print(f"\nfolding={folding!r}: {scheduled.total_processors} "
              f"processors, {scheduled.pattern.describe()}")
        print(f"  Sp = {sp:.1f}%  (paper reports 49.4% for its graph)")

    # generate + verify the partitioned program
    scheduled = schedule_loop(graph, machine)
    program = partition(scheduled, 24)
    verify_against_sequential(w.loop, program)
    print("\ncodegen: partitioned program computes exactly the "
          "sequential values (24 iterations checked)")
    print(f"  cross-processor transfers: {len(program.transfers())}")

    trace = simulate(graph, scheduled.program(50), machine.comm)
    print(f"  simulated 50 iterations: {trace.makespan} cycles, "
          f"{trace.message_count()} messages, "
          f"{trace.total_comm_cycles()} message-cycles")


if __name__ == "__main__":
    main()
