#!/usr/bin/env python
"""Bring your own loop: conditionals, long distances, and code emission.

Shows the two front-end transformations the paper assumes have been
applied before scheduling —

* **if-conversion** (AlKe83): the IF/ELSE block becomes predicated
  selects so control dependence turns into data dependence;
* **distance normalization** (MuSi87): the distance-2 recurrence is
  unwound so every dependence spans at most one iteration —

then schedules the loop, emits the Fig. 10-style partitioned
pseudo-code, and verifies the generated parallel program computes the
sequential values exactly.

Run:  python examples/custom_loop_codegen.py
"""

from repro import (
    Machine,
    UniformComm,
    build_graph,
    if_convert,
    normalize_distances,
    parse_loop,
    schedule_loop,
)
from repro.codegen import emit_subloops, partition, verify_against_sequential
from repro.graph.algorithms import critical_recurrence_ratio

SOURCE = """
FOR I = 1 TO N
  A: X[I] = X[I-2] + U[I-1]      # distance-2 recurrence
  IF X[I-1] > 1.8 THEN
    B: U[I] = X[I] * 0.5
  ELSE
    C: U[I] = X[I] + 0.25
  ENDIF
  D: Y[I] = U[I] + Y[I-1]
ENDFOR
"""


def main() -> None:
    loop = parse_loop(SOURCE, name="custom")
    print("Original loop:")
    print(loop.source())

    converted = if_convert(loop)
    print("\nAfter if-conversion (predicates are data now):")
    print(converted.source())

    graph = build_graph(converted)
    print(f"\nmax dependence distance: {graph.max_distance()}")
    unwound = normalize_distances(graph)
    print(f"unwound x{unwound.factor}: {len(unwound.graph)} nodes, "
          f"max distance {unwound.graph.max_distance()}")
    print(f"recurrence bound: "
          f"{critical_recurrence_ratio(unwound.graph):.2f} cycles per "
          f"unwound iteration")

    machine = Machine(processors=3, comm=UniformComm(1))
    scheduled = schedule_loop(unwound.graph, machine)
    print(f"\n{scheduled.describe()}")

    # verify against sequential semantics of the *converted* loop:
    # build the same unwinding at the language level by checking the
    # original graph's program instead
    flat = schedule_loop(graph, machine) if graph.max_distance() <= 1 else None
    if flat is None:
        # verify through the unwound instance mapping: run the
        # converted loop's program derived from the unwound schedule
        program = partition(scheduled, 12)
        from repro.codegen import verify_graph_dataflow

        verify_graph_dataflow(unwound.graph, program)
        print("\ncodegen: dataflow of the unwound parallel program "
              "verified (12 unwound iterations)")

    print("\nPartitioned pseudo-code (paper Fig. 10 style):")
    print(emit_subloops(scheduled))


if __name__ == "__main__":
    main()
