#!/usr/bin/env python
"""The paper's Section 4 experiment, interactively: random loops under
unpredictable communication.

Schedules each random Cyclic subgraph with the estimate k = 3, then
executes it while every message actually costs k + mm - 1 cycles, for
mm in {1, 3, 5} — the paper's worst-case protocol — and finally sweeps
the true cost up to ~7x the node execution time (the conclusion's
robustness claim).

Run:  python examples/robustness_study.py [num_seeds]
"""

import sys

from repro.experiments import run_comm_sweep, run_table1
from repro.report import format_table1


def main() -> None:
    seeds = range(1, 1 + int(sys.argv[1])) if len(sys.argv) > 1 else None

    print("Table 1 protocol: 40-node random loops, Cyclic subgraph "
          "extracted, k=3 estimated, worst-case run-time cost k+mm-1\n")
    table = run_table1(seeds, iterations=50)
    print(format_table1(table))

    print("\nRobustness sweep (schedule with k=3, run with true cost):")
    for pt in run_comm_sweep(seeds):
        bar = "#" * int(pt.sp_ours / 2)
        print(f"  true k={pt.true_k:3d}  ours {pt.sp_ours:5.1f} "
              f"doacross {pt.sp_doacross:5.1f}  {bar}")
    print("\nPaper's conclusion: 'careful scheduling can be both robust "
          "and profitable' — the factor over DOACROSS grows as "
          "communication gets less predictable.")


if __name__ == "__main__":
    main()
