#!/usr/bin/env python
"""Diagnosing a parallel run: traces, critical chains, contention, DOT.

The simulated multiprocessor records everything — op timings and every
message.  This example schedules the elliptic wave filter, runs it, and
shows the diagnostics a compiler engineer would reach for:

* per-processor utilization and message statistics;
* the *measured critical chain* — the sequence of ops and messages
  whose back-to-back times explain the makespan (is the recurrence the
  bottleneck, or did communication get in the way?);
* the same run under link contention (one message injection per
  processor pair per cycle), an adversity the paper's model excludes;
* a Graphviz export of the classified dependence graph
  (``elliptic.dot`` — render with ``dot -Tpng``).

Run:  python examples/trace_analysis.py
"""

from collections import Counter

from repro import classify, schedule_loop, to_dot
from repro.sim import critical_chain, simulate, trace_stats
from repro.workloads import elliptic_filter


def main() -> None:
    w = elliptic_filter()
    scheduled = schedule_loop(w.graph, w.machine)
    program = scheduled.program(40)

    trace = simulate(w.graph, program, w.machine.comm)
    print("Elliptic wave filter, 40 iterations:")
    print(trace_stats(trace).summary())

    chain = critical_chain(w.graph, trace)
    reasons = Counter(reason for _, reason in chain)
    print(f"\ncritical chain: {len(chain)} links "
          f"({reasons['data']} dataflow, {reasons['comm']} messages, "
          f"{reasons['proc']} processor-busy)")
    print("last ten links:")
    for op, reason in chain[-10:]:
        p = trace.schedule.placement(op)
        print(f"  {str(op):10s} @{p.start:4d} on PE{p.proc}  ({reason})")

    tight = simulate(w.graph, program, w.machine.comm, link_capacity=1)
    print(f"\nwith link contention (1 msg/cycle/link): "
          f"{tight.makespan} cycles vs {trace.makespan} overlapped "
          f"({100 * (tight.makespan - trace.makespan) / trace.makespan:.1f}% slower)")

    dot = to_dot(w.graph, classification=classify(w.graph))
    with open("elliptic.dot", "w") as fh:
        fh.write(dot)
    print("\nwrote elliptic.dot (render with: dot -Tpng elliptic.dot)")


if __name__ == "__main__":
    main()
